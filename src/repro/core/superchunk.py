"""The super-chunk: the granularity of data routing.

"We adopt the notion of super-chunk [6], which represents consecutive smaller
chunks of data, as a unit for data routing that assigns super-chunks to nodes
and then performs deduplication at each node independently and in parallel."
(paper Section 1)

A :class:`SuperChunk` carries its member chunk records, its handprint, and
enough provenance (stream / file ids) for the director to rebuild file recipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.fingerprint.fingerprinter import ChunkRecord
from repro.fingerprint.handprint import (
    DEFAULT_HANDPRINT_SIZE,
    Handprint,
    compute_handprint,
)
from repro.errors import ValidationError

DEFAULT_SUPERCHUNK_SIZE = 1024 * 1024
"""The 1 MB super-chunk size the paper selects for cluster experiments (Section 4.4)."""


@dataclass
class SuperChunk:
    """A consecutive run of chunks from one backup stream.

    Attributes
    ----------
    chunks:
        The member chunk records in stream order.
    handprint:
        The min-k handprint over the member chunk fingerprints.
    stream_id:
        Identifier of the data stream (backup client stream) this super-chunk
        belongs to; used by parallel container management.
    sequence_number:
        Position of this super-chunk within its stream.
    """

    chunks: List[ChunkRecord]
    handprint: Handprint
    stream_id: int = 0
    sequence_number: int = 0

    @classmethod
    def from_chunks(
        cls,
        chunks: Sequence[ChunkRecord],
        handprint_size: int = DEFAULT_HANDPRINT_SIZE,
        stream_id: int = 0,
        sequence_number: int = 0,
    ) -> "SuperChunk":
        """Build a super-chunk (and its handprint) from chunk records."""
        if not chunks:
            raise ValidationError("a super-chunk must contain at least one chunk")
        handprint = compute_handprint(
            (chunk.fingerprint for chunk in chunks), handprint_size=handprint_size
        )
        return cls(
            chunks=list(chunks),
            handprint=handprint,
            stream_id=stream_id,
            sequence_number=sequence_number,
        )

    @property
    def logical_size(self) -> int:
        """Total logical bytes represented by this super-chunk."""
        return sum(chunk.length for chunk in self.chunks)

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    @property
    def fingerprints(self) -> List[bytes]:
        """Fingerprints of all member chunks, in stream order."""
        return [chunk.fingerprint for chunk in self.chunks]

    @property
    def distinct_fingerprints(self) -> int:
        return len(set(self.fingerprints))

    def fingerprint_list(self) -> List[Tuple[bytes, int]]:
        """``(fingerprint, length)`` pairs: the batched fingerprint query payload."""
        return [(chunk.fingerprint, chunk.length) for chunk in self.chunks]

    def __len__(self) -> int:
        return len(self.chunks)


@dataclass
class SuperChunkProvenance:
    """Optional mapping from super-chunk member chunks back to files.

    The director uses this to assemble file recipes when a file spans multiple
    super-chunks or a super-chunk spans multiple small files.
    """

    file_ids: List[Optional[str]] = field(default_factory=list)

    def add(self, file_id: Optional[str]) -> None:
        self.file_ids.append(file_id)
