"""Core public API of the Sigma-Dedupe reproduction.

* :class:`~repro.core.superchunk.SuperChunk` -- a group of consecutive chunks,
  the unit of data routing.
* :class:`~repro.core.partitioner.StreamPartitioner` -- turns backup files
  into fingerprinted chunks and groups them into super-chunks.
* :class:`~repro.core.framework.SigmaDedupe` -- the high-level framework
  object: configure a cluster, back up data streams, restore files, inspect
  statistics.
"""

from repro.core.superchunk import SuperChunk
from repro.core.partitioner import PartitionerConfig, StreamPartitioner
from repro.core.framework import BackupReport, SigmaDedupe

__all__ = [
    "SuperChunk",
    "PartitionerConfig",
    "StreamPartitioner",
    "SigmaDedupe",
    "BackupReport",
]
