"""Chunker interface and the raw-chunk value object."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.errors import ChunkingError


@dataclass(frozen=True)
class RawChunk:
    """A contiguous piece of a data stream produced by a chunker.

    Attributes
    ----------
    data:
        The chunk payload.
    offset:
        Byte offset of the chunk within the stream it was cut from.
    """

    data: bytes
    offset: int

    @property
    def length(self) -> int:
        """Size of the chunk payload in bytes."""
        return len(self.data)

    def __len__(self) -> int:  # pragma: no cover - trivial delegation
        return len(self.data)


class Chunker(ABC):
    """Abstract base class for all chunking algorithms.

    A chunker is a pure function from a byte stream to a sequence of
    :class:`RawChunk` objects whose concatenation reproduces the input.
    """

    @abstractmethod
    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        """Yield the chunks of ``data`` in stream order."""

    def chunk_all(self, data: bytes) -> List[RawChunk]:
        """Return all chunks of ``data`` as a list (convenience wrapper)."""
        return list(self.chunk(data))

    @property
    @abstractmethod
    def average_chunk_size(self) -> int:
        """The nominal/average chunk size in bytes for this configuration."""

    def validate_roundtrip(self, data: bytes) -> None:
        """Raise :class:`ChunkingError` unless the chunks reassemble ``data``.

        Used by tests and by callers that want a cheap sanity check on new
        chunker configurations.
        """
        reassembled = b"".join(chunk.data for chunk in self.chunk(data))
        if reassembled != data:
            raise ChunkingError(
                f"{type(self).__name__} did not partition the stream losslessly: "
                f"{len(reassembled)} bytes reassembled from {len(data)} input bytes"
            )


def iter_chunk_payloads(chunks: Iterable[RawChunk]) -> Iterator[bytes]:
    """Yield only the payloads of an iterable of chunks."""
    for chunk in chunks:
        yield chunk.data
