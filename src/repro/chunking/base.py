"""Chunker interface and the raw-chunk value object."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.errors import ChunkingError


@dataclass(frozen=True)
class RawChunk:
    """A contiguous piece of a data stream produced by a chunker.

    Attributes
    ----------
    data:
        The chunk payload.
    offset:
        Byte offset of the chunk within the stream it was cut from.
    """

    data: bytes
    offset: int

    @property
    def length(self) -> int:
        """Size of the chunk payload in bytes."""
        return len(self.data)

    def __len__(self) -> int:  # pragma: no cover - trivial delegation
        return len(self.data)


class Chunker(ABC):
    """Abstract base class for all chunking algorithms.

    A chunker is a pure function from a byte stream to a sequence of
    :class:`RawChunk` objects whose concatenation reproduces the input.
    """

    @abstractmethod
    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        """Yield the chunks of ``data`` in stream order."""

    def cut_offsets(self, data: "bytes | bytearray | memoryview") -> Iterator[int]:
        """Yield the end offset of every chunk of ``data``, in stream order.

        This is the allocation-free form of :meth:`chunk`: the chunk at index
        ``i`` spans ``[cuts[i-1], cuts[i])`` (with an implicit leading 0), so
        callers that slice the stream themselves — e.g. the fused
        chunk→fingerprint path in
        :meth:`~repro.fingerprint.fingerprinter.Fingerprinter.fingerprint_blocks`
        — never pay for intermediate :class:`RawChunk` payload copies.
        ``data`` may be any bytes-like object; a ``memoryview`` is scanned
        without copying.  The default implementation derives the offsets from
        :meth:`chunk`; chunkers whose scan never needs the payloads override
        it as the primitive and build :meth:`chunk` on top.
        """
        for chunk in self.chunk(data):
            yield chunk.offset + len(chunk.data)

    def chunk_all(self, data: bytes) -> List[RawChunk]:
        """Return all chunks of ``data`` as a list (convenience wrapper)."""
        return list(self.chunk(data))

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[RawChunk]:
        """Chunk a stream delivered as an iterable of byte blocks.

        Yields exactly the chunks that :meth:`chunk` would produce on the
        concatenation of ``blocks`` (same payloads, same stream offsets)
        while buffering only the trailing un-committed chunk (at most one
        maximum chunk size) plus the incoming block, so arbitrarily long
        streams can be chunked without being materialised.  The carried
        tail is re-scanned once per block, so very small blocks trade
        throughput for memory; override (as the fixed-size chunker does)
        where a cheaper incremental scan exists.

        Correctness relies on the restart property every chunker here has:
        the scan state is reset at each emitted boundary, so re-chunking a
        buffer that starts at a boundary continues the stream exactly.  All
        chunks of an intermediate buffer except the last end at committed
        boundaries (a hash match or a forced maximum-size cut), both of
        which depend only on bytes at or before the cut point; only the
        trailing remainder may still grow, so it is carried into the next
        buffer.
        """
        buffer = bytearray()
        stream_offset = 0  # offset of buffer[0] within the whole stream
        for block in blocks:
            if not block:
                continue
            buffer += block
            chunks = self.chunk_all(bytes(buffer))
            if len(chunks) < 2:
                continue
            for chunk in chunks[:-1]:
                yield RawChunk(data=chunk.data, offset=stream_offset + chunk.offset)
            tail = chunks[-1]
            stream_offset += tail.offset
            buffer = bytearray(tail.data)
        if buffer:
            for chunk in self.chunk(bytes(buffer)):
                yield RawChunk(data=chunk.data, offset=stream_offset + chunk.offset)

    @property
    @abstractmethod
    def average_chunk_size(self) -> int:
        """The nominal/average chunk size in bytes for this configuration."""

    def validate_roundtrip(self, data: bytes) -> None:
        """Raise :class:`ChunkingError` unless the chunks reassemble ``data``.

        Used by tests and by callers that want a cheap sanity check on new
        chunker configurations.
        """
        reassembled = b"".join(chunk.data for chunk in self.chunk(data))
        if reassembled != data:
            raise ChunkingError(
                f"{type(self).__name__} did not partition the stream losslessly: "
                f"{len(reassembled)} bytes reassembled from {len(data)} input bytes"
            )


def iter_chunk_payloads(chunks: Iterable[RawChunk]) -> Iterator[bytes]:
    """Yield only the payloads of an iterable of chunks."""
    for chunk in chunks:
        yield chunk.data
