"""Data chunking substrate.

Deduplication partitions large data objects into smaller parts called chunks
(paper Section 1).  This package implements the chunking algorithms the paper
uses or evaluates:

* :class:`~repro.chunking.fixed.StaticChunker` -- fixed-size ("static
  chunking", SC) used for the main evaluation with a 4 KB chunk size.
* :class:`~repro.chunking.cdc.ContentDefinedChunker` -- Rabin-fingerprint
  based content-defined chunking (CDC) as implemented in Cumulus [21].
* :class:`~repro.chunking.tttd.TTTDChunker` -- the Two-Threshold Two-Divisor
  chunker [16] used for the super-chunk resemblance analysis of Section 2.2
  (1 KB / 2 KB / 4 KB / 32 KB thresholds).

All chunkers share the :class:`~repro.chunking.base.Chunker` interface and
yield :class:`~repro.chunking.base.RawChunk` objects.
"""

from repro.chunking.base import Chunker, RawChunk, iter_chunk_payloads
from repro.chunking.fixed import StaticChunker
from repro.chunking.rabin import RabinRollingHash, RABIN_WINDOW_SIZE
from repro.chunking.cdc import ContentDefinedChunker
from repro.chunking.tttd import TTTDChunker

__all__ = [
    "Chunker",
    "RawChunk",
    "iter_chunk_payloads",
    "StaticChunker",
    "RabinRollingHash",
    "RABIN_WINDOW_SIZE",
    "ContentDefinedChunker",
    "TTTDChunker",
]
