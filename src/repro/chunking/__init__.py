"""Data chunking substrate.

Deduplication partitions large data objects into smaller parts called chunks
(paper Section 1).  This package implements the chunking algorithms the paper
uses or evaluates, plus a high-throughput gear-hash chunker:

* :class:`~repro.chunking.fixed.StaticChunker` -- fixed-size ("static
  chunking", SC) used for the main evaluation with a 4 KB chunk size.
* :class:`~repro.chunking.cdc.ContentDefinedChunker` -- Rabin-fingerprint
  based content-defined chunking (CDC) as implemented in Cumulus [21].
* :class:`~repro.chunking.tttd.TTTDChunker` -- the Two-Threshold Two-Divisor
  chunker [16] used for the super-chunk resemblance analysis of Section 2.2
  (1 KB / 2 KB / 4 KB / 32 KB thresholds).
* :class:`~repro.chunking.gear.GearChunker` -- FastCDC-style gear-hash
  chunker with normalized chunking and cut-point skipping, the fastest
  pure-Python content-defined option here.
* :class:`~repro.chunking.accel.AcceleratedGearChunker` -- the same gear
  boundaries computed by a vectorised NumPy lag-sum scan; strictly optional
  (NumPy absent => registry falls back to the pure scan, bit-identically).

All chunkers share the :class:`~repro.chunking.base.Chunker` interface
(including the streaming :meth:`~repro.chunking.base.Chunker.chunk_stream`
and the allocation-free :meth:`~repro.chunking.base.Chunker.cut_offsets`)
and yield :class:`~repro.chunking.base.RawChunk` objects.  They are also
registered by name in :data:`ALL_CHUNKERS` for configuration-driven selection
via :func:`build_chunker`: ``"gear"`` resolves to the accelerated scan when
NumPy is importable and to the pure scan otherwise, while ``"gear-accel"``
and ``"gear-pure"`` pin one backend explicitly (``"gear-accel"`` raises
:class:`~repro.errors.ChunkingError` without NumPy).
"""

from typing import Callable, Dict

from repro.chunking.base import Chunker, RawChunk, iter_chunk_payloads
from repro.chunking.fixed import StaticChunker
from repro.chunking.rabin import RabinRollingHash, RABIN_WINDOW_SIZE
from repro.chunking.cdc import ContentDefinedChunker
from repro.chunking.tttd import TTTDChunker
from repro.chunking.gear import GearChunker
from repro.chunking.accel import (
    AcceleratedGearChunker,
    best_gear_chunker,
    numpy_available,
)
from repro.errors import ChunkingError

#: Registry of chunking schemes by configuration name.  Values are factories
#: (classes or functions) returning a configured :class:`Chunker`.
ALL_CHUNKERS: Dict[str, Callable[..., Chunker]] = {
    "static": StaticChunker,
    "cdc": ContentDefinedChunker,
    "tttd": TTTDChunker,
    "gear": best_gear_chunker,
    "gear-accel": AcceleratedGearChunker,
    "gear-pure": GearChunker,
}


def build_chunker(name: str, **kwargs) -> Chunker:
    """Instantiate a chunking scheme by its registered name."""
    try:
        chunker_factory = ALL_CHUNKERS[name]
    except KeyError:
        raise ChunkingError(
            f"unknown chunker {name!r}; expected one of {sorted(ALL_CHUNKERS)}"
        ) from None
    return chunker_factory(**kwargs)


__all__ = [
    "Chunker",
    "RawChunk",
    "iter_chunk_payloads",
    "StaticChunker",
    "RabinRollingHash",
    "RABIN_WINDOW_SIZE",
    "ContentDefinedChunker",
    "TTTDChunker",
    "GearChunker",
    "AcceleratedGearChunker",
    "best_gear_chunker",
    "numpy_available",
    "ALL_CHUNKERS",
    "build_chunker",
]
