"""Fixed-size (static) chunking.

The paper's main evaluation uses static chunking (SC) with a 4 KB chunk size
because it has "negligible overhead" compared with content-defined chunking
while achieving a very similar deduplication ratio on the studied workloads
(Figure 5(a)).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.chunking.base import Chunker, RawChunk
from repro.errors import ValidationError


class StaticChunker(Chunker):
    """Cut a stream into fixed-size chunks.

    The final chunk of a stream may be shorter than ``chunk_size``.

    Parameters
    ----------
    chunk_size:
        The fixed chunk size in bytes (the paper default is 4096).
    """

    def __init__(self, chunk_size: int = 4096):
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self._chunk_size = chunk_size

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def average_chunk_size(self) -> int:
        return self._chunk_size

    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        size = self._chunk_size
        for offset in range(0, len(data), size):
            yield RawChunk(data=data[offset:offset + size], offset=offset)

    def cut_offsets(self, data: "bytes | bytearray | memoryview") -> Iterator[int]:
        length = len(data)
        yield from range(self._chunk_size, length, self._chunk_size)
        if length:
            yield length

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[RawChunk]:
        # Fixed-size boundaries never move, so the generic re-chunking base
        # implementation would do redundant work; emit directly instead.
        size = self._chunk_size
        buffer = bytearray()
        offset = 0
        for block in blocks:
            buffer += block
            while len(buffer) >= size:
                yield RawChunk(data=bytes(buffer[:size]), offset=offset)
                del buffer[:size]
                offset += size
        if buffer:
            yield RawChunk(data=bytes(buffer), offset=offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticChunker(chunk_size={self._chunk_size})"
