"""Gear-hash content-defined chunking with normalized chunking (FastCDC-style).

The gear hash replaces the Rabin rolling hash with a single shift-add over a
precomputed 256-entry table of random 64-bit values::

    fp = ((fp << 1) + GEAR[byte]) & (2**64 - 1)

Each byte's table entry is left-shifted once per subsequent byte, so a byte
stops influencing the fingerprint after 64 positions -- the sliding window is
implicit and no outgoing-byte bookkeeping is needed.  Boundaries are declared
when the *high* bits of the fingerprint (where entropy from the whole implicit
window accumulates) are all zero under a mask.

Two further FastCDC techniques are applied:

* **Cut-point skipping** -- the scan starts ``min_size`` bytes into each
  chunk with a fresh fingerprint, so the minimum-size region costs nothing.
* **Normalized chunking** -- a *stricter* mask (more bits, fewer cuts) is
  used below a normalization point and a *looser* mask above it, squeezing
  the chunk-size distribution around the target.  Rather than fixing the
  normalization point at the target size, it is solved by bisection so the
  realized mean chunk size equals the configured ``average_size`` exactly
  (power-of-two masks alone cannot hit an arbitrary mean once the minimum
  skip and maximum truncation are accounted for).

The inner loop is table-driven with hoisted locals and no per-byte object
calls, which makes it the fastest pure-Python chunker in this repository by a
wide margin (see ``benchmarks/bench_chunker_throughput.py``).
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Tuple

from repro.chunking.base import Chunker, RawChunk
from repro.errors import ValidationError

_MASK64 = (1 << 64) - 1

#: Extra mask bits below / fewer bits above the normalization point.
DEFAULT_NORMALIZATION = 2


def _build_gear_table(salt: bytes = b"repro-gear-table-v1") -> List[int]:
    """256 deterministic pseudo-random 64-bit gear values.

    Derived from SHA-256 so the table (and therefore every chunk boundary)
    is stable across Python versions, platforms and processes.
    """
    return [
        int.from_bytes(hashlib.sha256(salt + bytes([byte])).digest()[:8], "big")
        for byte in range(256)
    ]


GEAR_TABLE: Tuple[int, ...] = tuple(_build_gear_table())


def _top_mask(bits: int) -> int:
    """A mask selecting the ``bits`` most significant bits of a 64-bit word."""
    return ((1 << bits) - 1) << (64 - bits)


def _expected_size(
    normal_point: int, min_size: int, max_size: int, p_strict: float, p_loose: float
) -> float:
    """Mean chunk size given a mask switch at ``normal_point``.

    Boundary trials run once per byte past ``min_size``: with probability
    ``p_strict`` per trial up to the normalization point, ``p_loose`` beyond
    it, and a forced cut at ``max_size``.  Survival is a product of two
    geometric runs, so the mean reduces to two geometric series.
    """
    span = max_size - min_size
    strict_trials = min(max(normal_point - min_size, 0), span)
    q_strict = 1.0 - p_strict
    q_loose = 1.0 - p_loose
    # sum over k in [0, strict_trials) of q_strict**k
    strict_part = (1.0 - q_strict ** strict_trials) / (1.0 - q_strict)
    survival_at_switch = q_strict ** strict_trials
    loose_trials = span - strict_trials
    loose_part = survival_at_switch * (1.0 - q_loose ** loose_trials) / (1.0 - q_loose)
    return min_size + strict_part + loose_part


def _solve_normal_point(
    average_size: int, min_size: int, max_size: int, p_strict: float, p_loose: float
) -> int:
    """Bisect the normalization point so the realized mean hits ``average_size``.

    The mean is monotone increasing in the switch point (a longer strict
    region suppresses cuts for longer), so bisection converges; the result is
    clamped when the requested average is unreachable for these masks.
    """
    low, high = min_size, max_size
    if _expected_size(low, min_size, max_size, p_strict, p_loose) >= average_size:
        return low
    if _expected_size(high, min_size, max_size, p_strict, p_loose) <= average_size:
        return high
    while low < high:
        mid = (low + high) // 2
        if _expected_size(mid, min_size, max_size, p_strict, p_loose) < average_size:
            low = mid + 1
        else:
            high = mid
    return low


class GearChunker(Chunker):
    """High-throughput gear-hash chunker with normalized chunking.

    Parameters
    ----------
    average_size:
        Target average chunk size in bytes; the normalization point is solved
        so the realized mean matches it on random data.
    min_size:
        Minimum chunk size (default ``average_size // 4``); the scan skips
        straight past it.
    max_size:
        Hard maximum chunk size (default ``average_size * 4``).
    normalization:
        Normalization level: the strict mask carries this many bits more than
        the nominal mask, the loose mask this many fewer.  ``0`` disables
        normalized chunking (a single mask throughout).
    """

    def __init__(
        self,
        average_size: int = 4096,
        min_size: int | None = None,
        max_size: int | None = None,
        normalization: int = DEFAULT_NORMALIZATION,
    ):
        if average_size < 64:
            raise ValidationError("average_size must be >= 64 bytes")
        if normalization < 0:
            raise ValidationError("normalization must be >= 0")
        self._average_size = average_size
        self.min_size = min_size if min_size is not None else average_size // 4
        self.max_size = max_size if max_size is not None else average_size * 4
        if self.min_size < 1 or self.min_size >= self.max_size:
            raise ValidationError("require 1 <= min_size < max_size")
        self.normalization = normalization
        bits = max(1, round((average_size - 1).bit_length()))
        strict_bits = min(62, bits + normalization)
        loose_bits = max(1, bits - normalization)
        self._mask_strict = _top_mask(strict_bits)
        self._mask_loose = _top_mask(loose_bits)
        p_strict = 2.0 ** -strict_bits
        p_loose = 2.0 ** -loose_bits
        self._normal_point = _solve_normal_point(
            average_size, self.min_size, self.max_size, p_strict, p_loose
        )
        self._expected = _expected_size(
            self._normal_point, self.min_size, self.max_size, p_strict, p_loose
        )

    @property
    def average_chunk_size(self) -> int:
        """The realized expected chunk size on random data (not the request)."""
        return round(self._expected)

    @property
    def normal_point(self) -> int:
        """Chunk length at which the boundary mask switches strict -> loose."""
        return self._normal_point

    def cut_offsets(self, data: "bytes | bytearray | memoryview") -> Iterator[int]:
        length = len(data)
        table = GEAR_TABLE
        mask64 = _MASK64
        mask_strict = self._mask_strict
        mask_loose = self._mask_loose
        min_size = self.min_size
        max_size = self.max_size
        normal_point = self._normal_point
        start = 0
        while start < length:
            remaining = length - start
            if remaining <= min_size:
                yield length
                break
            end = start + max_size if remaining > max_size else length
            cut = end
            position = start + min_size  # cut-point skipping
            strict_end = start + normal_point
            if strict_end > end:
                strict_end = end
            fingerprint = 0
            found = False
            for byte in data[position:strict_end]:
                fingerprint = ((fingerprint << 1) + table[byte]) & mask64
                position += 1
                if not fingerprint & mask_strict:
                    cut = position
                    found = True
                    break
            if not found:
                for byte in data[position:end]:
                    fingerprint = ((fingerprint << 1) + table[byte]) & mask64
                    position += 1
                    if not fingerprint & mask_loose:
                        cut = position
                        break
            yield cut
            start = cut

    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        start = 0
        for cut in self.cut_offsets(data):
            yield RawChunk(data=data[start:cut], offset=start)
            start = cut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GearChunker(average_size={self._average_size}, "
            f"min_size={self.min_size}, max_size={self.max_size}, "
            f"normalization={self.normalization})"
        )
