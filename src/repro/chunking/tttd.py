"""Two-Threshold Two-Divisor (TTTD) chunking.

TTTD [Eshghi & Tang, HP TR 2005] is the CDC variant the paper uses for its
super-chunk resemblance analysis (Section 2.2), configured with 1 KB / 2 KB /
4 KB / 32 KB as the minimum threshold, minor mean, major mean and maximum
threshold of the chunk size.

The algorithm keeps two divisors: the *main* divisor ``D`` (expected chunk
size equal to the major mean) and a *backup* divisor ``D'`` (expected chunk
size equal to the minor mean).  While scanning, any position matching the
backup divisor after the minimum threshold is remembered; if the main divisor
never fires before the maximum threshold, the last backup match is used as the
boundary instead of the hard maximum, which reduces the number of
maximum-forced cuts and improves deduplication.
"""

from __future__ import annotations

from typing import Iterator

from repro.chunking.base import Chunker, RawChunk
from repro.chunking.rabin import RabinRollingHash, RABIN_WINDOW_SIZE
from repro.errors import ValidationError


class TTTDChunker(Chunker):
    """Two-Threshold Two-Divisor content-defined chunker.

    Parameters
    ----------
    min_size:
        Minimum chunk size (paper: 1 KB).
    backup_mean:
        Minor mean -- the expected chunk size of the backup divisor (paper: 2 KB).
    main_mean:
        Major mean -- the expected chunk size of the main divisor (paper: 4 KB).
    max_size:
        Maximum chunk size at which a cut is forced (paper: 32 KB).
    """

    def __init__(
        self,
        min_size: int = 1024,
        backup_mean: int = 2048,
        main_mean: int = 4096,
        max_size: int = 32768,
        window_size: int = RABIN_WINDOW_SIZE,
    ):
        if not min_size < backup_mean < main_mean < max_size:
            raise ValidationError("require min_size < backup_mean < main_mean < max_size")
        self.min_size = min_size
        self.backup_mean = backup_mean
        self.main_mean = main_mean
        self.max_size = max_size
        self.window_size = window_size
        self._main_mask = self._mask_for(main_mean)
        self._backup_mask = self._mask_for(backup_mean)
        self._magic = 0x78

    @staticmethod
    def _mask_for(mean: int) -> int:
        # A boundary fires with probability 1/2**bits, so choose bits such that
        # 2**bits approximates the desired mean chunk length.
        bits = max(1, mean.bit_length() - 1)
        return (1 << bits) - 1

    @property
    def average_chunk_size(self) -> int:
        return self.main_mean

    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        if not data:
            return
        hasher = RabinRollingHash(self.window_size)
        length = len(data)
        start = 0
        position = 0
        backup_boundary = -1
        main_magic = self._magic & self._main_mask
        backup_magic = self._magic & self._backup_mask
        while position < length:
            hasher.update(data[position])
            position += 1
            chunk_length = position - start
            if chunk_length < self.min_size:
                continue
            value = hasher.value
            if (value & self._backup_mask) == backup_magic:
                backup_boundary = position
            if (value & self._main_mask) == main_magic:
                yield RawChunk(data=data[start:position], offset=start)
                start = position
                backup_boundary = -1
                hasher.reset()
                continue
            if chunk_length >= self.max_size:
                # Prefer the remembered backup boundary over a hard cut.
                cut = backup_boundary if backup_boundary > start else position
                yield RawChunk(data=data[start:cut], offset=start)
                # Rewind to the cut point if we cut at the backup boundary.
                position = cut
                start = cut
                backup_boundary = -1
                hasher.reset()
        if start < length:
            yield RawChunk(data=data[start:length], offset=start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TTTDChunker(min={self.min_size}, backup_mean={self.backup_mean}, "
            f"main_mean={self.main_mean}, max={self.max_size})"
        )
