"""Rabin-style rolling hash used by the content-defined chunkers.

The paper's CDC implementation is "Rabin hash based content defined chunking
... based on the open source code in Cumulus [21]".  We implement the same
idea: a polynomial rolling hash over a sliding window whose low-order bits are
tested against a divisor to declare chunk boundaries.

A classic Rabin fingerprint works in GF(2); for a pure-Python reproduction we
use the equivalent Rabin-Karp style polynomial hash modulo 2**64 with
precomputed byte tables, which has the same boundary-distribution properties
that matter for chunk-size statistics (boundaries behave like a Bernoulli
process with probability 1/divisor per position).
"""

from __future__ import annotations

from typing import Sequence
from repro.errors import ValidationError

#: Sliding window width in bytes, the value used by Cumulus and LBFS-style CDC.
RABIN_WINDOW_SIZE = 48

_MASK64 = (1 << 64) - 1
_MULTIPLIER = 0x27220A95FE26F617  # a fixed odd 64-bit multiplier


class RabinRollingHash:
    """A rolling polynomial hash over a fixed-width window.

    The hash of a window ``b[0..w-1]`` is ``sum(b[i] * M**(w-1-i)) mod 2**64``.
    Rolling in a new byte and rolling out the oldest byte is O(1) thanks to a
    precomputed ``M**w`` table indexed by the outgoing byte value.

    Parameters
    ----------
    window_size:
        Width of the sliding window in bytes.
    """

    def __init__(self, window_size: int = RABIN_WINDOW_SIZE):
        if window_size < 1:
            raise ValidationError("window_size must be >= 1")
        self.window_size = window_size
        self._out_table = self._build_out_table(window_size)
        self.reset()

    @staticmethod
    def _build_out_table(window_size: int) -> Sequence[int]:
        # out_table[b] = b * M**window_size mod 2**64, subtracted when byte b
        # slides out of the window.
        factor = pow(_MULTIPLIER, window_size, 1 << 64)
        return [(b * factor) & _MASK64 for b in range(256)]

    def reset(self) -> None:
        """Clear the window and the running hash value."""
        self._window = bytearray(self.window_size)
        self._position = 0
        self._filled = 0
        self.value = 0

    def update(self, byte: int) -> int:
        """Slide ``byte`` into the window and return the new hash value."""
        outgoing = self._window[self._position]
        self._window[self._position] = byte
        self._position = (self._position + 1) % self.window_size
        if self._filled < self.window_size:
            self._filled += 1
        self.value = ((self.value * _MULTIPLIER) + byte - self._out_table[outgoing]) & _MASK64
        return self.value

    def update_bytes(self, data: bytes) -> int:
        """Slide every byte of ``data`` through the window, return the final hash."""
        for byte in data:
            self.update(byte)
        return self.value

    @property
    def window_full(self) -> bool:
        """True once at least ``window_size`` bytes have been consumed."""
        return self._filled >= self.window_size


def hash_window(data: bytes) -> int:
    """Hash a complete window of bytes in one shot (used by tests)."""
    value = 0
    for byte in data[-RABIN_WINDOW_SIZE:]:
        value = ((value * _MULTIPLIER) + byte) & _MASK64
    return value
