"""NumPy-accelerated gear scan (optional backend for :class:`GearChunker`).

The gear recurrence ``fp = ((fp << 1) + GEAR[b]) & (2**64 - 1)`` makes the
fingerprint at position *n* a lag sum of the last 64 table values::

    fp_n = sum_{k=0}^{63} GEAR[b_{n-k}] << k   (mod 2**64)

-- every older term carries a shift of 64 or more and vanishes modulo
2**64.  That sum is a first-order linear recurrence with constant
coefficient 2, so the fingerprint at *every* position of a slab can be
computed with a logarithmic parallel-prefix of vectorised ``uint64``
shift/adds (6 doubling passes instead of one Python-bytecode iteration per
byte)::

    F_1[i]  = GEAR[b_i]
    F_2w[i] = F_w[i] + (F_w[i-w] << w)         # w = 1, 2, 4, 8, 16, 32

after which ``F_64[i]`` is the gear fingerprint of the 64-byte window ending
at byte ``i``.  Positions whose fingerprint survives the strict/loose
boundary masks are extracted once per slab; the chunk walk then applies
min-size cut-point skipping, the normalization-mask switch and max-size
truncation *sequentially* over those sparse candidate lists, exactly as the
pure scan does.

The only bytes still touched one at a time are the first 63 past each
chunk's minimum-size skip: there the scan fingerprint has consumed fewer
than 64 bytes since its reset, so it differs from the full-window lag sum
and is recomputed with the pure recurrence (~1.5 % of the stream at the
default 4 KB average).  The result is byte-identical chunk boundaries to
:class:`~repro.chunking.gear.GearChunker` at several times the throughput
(see ``benchmarks/bench_chunker_throughput.py``).

NumPy is strictly optional: this module imports without it,
:func:`numpy_available` reports the outcome, and
:func:`best_gear_chunker` (the registry entry behind
``build_chunker("gear")``) silently falls back to the pure-Python scan.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.chunking.gear import GEAR_TABLE, GearChunker, _MASK64
from repro.errors import ChunkingError

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched import
    _np = None

#: Bytes of the implicit gear window (64-bit fingerprint, one shift per byte).
_WINDOW = 64

#: Scan positions after a fingerprint reset whose value is *not* yet the
#: full-window lag sum (the window is still filling).
_WARMUP = _WINDOW - 1

#: Payload bytes per vectorised pass.  The doubling prefix makes ~12 passes
#: over an 8-bytes-per-input-byte ``uint64`` array, so slabs are sized to
#: keep that array (and one shift scratch buffer) cache-resident rather than
#: streaming from main memory; 32 KiB of payload (256 KiB of ``uint64``)
#: measured fastest by a wide margin over 128 KiB+ slabs.
_SLAB_BYTES = 1 << 15

_GEAR_NP = None


def numpy_available() -> bool:
    """Whether the NumPy-accelerated gear scan can be used in this process."""
    return _np is not None


def _gear_table_np():
    """The gear table as a ``uint64`` array (built once, on first use)."""
    global _GEAR_NP
    if _GEAR_NP is None:
        _GEAR_NP = _np.array(GEAR_TABLE, dtype=_np.uint64)
    return _GEAR_NP


class AcceleratedGearChunker(GearChunker):
    """Drop-in :class:`GearChunker` with a vectorised boundary scan.

    Same parameters, same realized chunk-size statistics, byte-identical
    boundaries; requires NumPy (raises :class:`ChunkingError` otherwise, so
    configuration-driven selection can fall back cleanly).
    """

    def __init__(self, *args, **kwargs):
        if _np is None:
            raise ChunkingError(
                "AcceleratedGearChunker requires NumPy; install it or use the "
                "pure-Python 'gear-pure' chunker"
            )
        super().__init__(*args, **kwargs)

    def _boundary_positions(self, data) -> Tuple[List[int], List[int]]:
        """Sorted byte positions whose full-window fingerprint hits each mask.

        Returns ``(strict_positions, loose_positions)``; a position ``j`` is
        listed when the gear fingerprint of the 64-byte window ending at
        ``data[j]`` has all mask bits clear.  Only valid for scans that have
        consumed at least 64 bytes -- the chunk walk consults these lists
        exclusively past each chunk's warm-up region, where that holds.
        """
        np = _np
        arr = np.frombuffer(data, dtype=np.uint8)
        gear = _gear_table_np()
        mask_strict = np.uint64(self._mask_strict)
        mask_loose = np.uint64(self._mask_loose)
        strict_parts: List[List[int]] = []
        loose_parts: List[List[int]] = []
        total = arr.shape[0]
        # Reused across slabs: the lag-sum accumulator and the shift scratch.
        # Writing shifts into a preallocated scratch instead of a fresh
        # temporary per pass keeps the whole doubling loop allocation-free.
        capacity = min(_SLAB_BYTES + _WARMUP, total)
        lag_buffer = np.empty(capacity, dtype=np.uint64)
        scratch = np.empty(capacity, dtype=np.uint64)
        for base in range(0, total, _SLAB_BYTES):
            # Overlap each slab with the previous 63 bytes so every lag sum
            # in the slab proper sees its whole window.
            lo = base - _WARMUP if base >= _WARMUP else 0
            stop = base + _SLAB_BYTES
            if stop > total:
                stop = total
            size = stop - lo
            lag_sum = lag_buffer[:size]
            np.take(gear, arr[lo:stop], out=lag_sum)
            shift = 1
            while shift < _WINDOW and shift < size:
                width = np.uint64(shift)
                np.left_shift(lag_sum[:-shift], width, out=scratch[: size - shift])
                lag_sum[shift:] += scratch[: size - shift]
                shift <<= 1
            lag_sum = lag_sum[base - lo:]
            # Strict hits are a subset of loose hits (the strict mask carries
            # strictly more bits), so test the strict mask only at loose hits.
            loose_local = np.flatnonzero((lag_sum & mask_loose) == 0)
            strict_local = loose_local[
                (lag_sum[loose_local] & mask_strict) == 0
            ]
            loose_parts.append((loose_local + base).tolist())
            strict_parts.append((strict_local + base).tolist())
        strict_positions = [pos for part in strict_parts for pos in part]
        loose_positions = [pos for part in loose_parts for pos in part]
        return strict_positions, loose_positions

    def cut_offsets(self, data: "bytes | bytearray | memoryview") -> Iterator[int]:
        length = len(data)
        if length <= self.min_size:
            if length:
                yield length
            return
        strict_positions, loose_positions = self._boundary_positions(data)
        num_strict = len(strict_positions)
        num_loose = len(loose_positions)
        strict_index = loose_index = 0
        table = GEAR_TABLE
        mask64 = _MASK64
        mask_strict = self._mask_strict
        mask_loose = self._mask_loose
        min_size = self.min_size
        max_size = self.max_size
        normal_point = self._normal_point
        start = 0
        while start < length:
            remaining = length - start
            if remaining <= min_size:
                yield length
                break
            end = start + max_size if remaining > max_size else length
            strict_end = start + normal_point
            if strict_end > end:
                strict_end = end
            position = start + min_size  # cut-point skipping
            warm_end = position + _WARMUP
            if warm_end > end:
                warm_end = end
            cut = 0
            # Warm-up: fewer than 64 bytes consumed since the reset, so the
            # scan fingerprint is not yet the full-window lag sum; replay the
            # pure recurrence over these (at most 63) bytes.
            fingerprint = 0
            for j in range(position, warm_end):
                fingerprint = ((fingerprint << 1) + table[data[j]]) & mask64
                if not fingerprint & (mask_strict if j < strict_end else mask_loose):
                    cut = j + 1
                    break
            if not cut:
                # Full-window region: boundaries are exactly the precomputed
                # mask hits.  Candidate queries advance monotonically, so the
                # list cursors never move backwards.
                if warm_end < strict_end:
                    while (
                        strict_index < num_strict
                        and strict_positions[strict_index] < warm_end
                    ):
                        strict_index += 1
                    if (
                        strict_index < num_strict
                        and strict_positions[strict_index] < strict_end
                    ):
                        cut = strict_positions[strict_index] + 1
                if not cut:
                    loose_from = warm_end if warm_end > strict_end else strict_end
                    while (
                        loose_index < num_loose
                        and loose_positions[loose_index] < loose_from
                    ):
                        loose_index += 1
                    if loose_index < num_loose and loose_positions[loose_index] < end:
                        cut = loose_positions[loose_index] + 1
                if not cut:
                    cut = end
            yield cut
            start = cut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return super().__repr__().replace("GearChunker", "AcceleratedGearChunker", 1)


def best_gear_chunker(**kwargs) -> GearChunker:
    """The fastest gear chunker importable here: accelerated, else pure.

    This is what the registry binds to the ``"gear"`` name, so callers that
    select chunkers by configuration inherit the NumPy speedup automatically
    and keep working (bit-identically) where NumPy is absent.
    """
    if _np is not None:
        return AcceleratedGearChunker(**kwargs)
    return GearChunker(**kwargs)
