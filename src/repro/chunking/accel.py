"""NumPy-accelerated gear scan (optional backend for :class:`GearChunker`).

The gear recurrence ``fp = ((fp << 1) + GEAR[b]) & (2**64 - 1)`` makes the
fingerprint at position *n* a lag sum of the last 64 table values::

    fp_n = sum_{k=0}^{63} GEAR[b_{n-k}] << k   (mod 2**64)

-- every older term carries a shift of 64 or more and vanishes modulo
2**64.  Two properties of that sum drive the design here:

* It is a first-order linear recurrence with constant coefficient 2, so the
  fingerprint at every position of a slab can be computed with a logarithmic
  parallel-prefix of vectorised ``uint64`` shift/adds instead of one Python
  iteration per byte.
* Because the mask is always a run of *top* bits, ``fp & mask == 0`` is
  equivalent to ``fp < 2**(64-bits)`` -- a single vectorised compare.

The scan works at **stride 4** rather than per byte: a 65536-entry pair
table folds two bytes per lookup (``PAIR[b0|b1<<8] = (GEAR[b0] << 1) +
GEAR[b1]``), two pair lookups fold a 4-byte group, and four doubling passes
over the per-group sums (shifts of 4w bits, lags of w groups) produce the
full-window fingerprint at every position ``4m + 3``.  The three off-grid
positions of each group are reconstructed exactly from the on-grid value via
the recurrence itself::

    F_{j+1} = (F_j << 1) + GEAR[b_{j+1}]    (mod 2**64)

reusing the already-gathered pair sums, so the whole stream is scanned with
roughly a quarter of the memory traffic of the per-byte doubling ladder.
Mask hits are rare (one per ~1 KiB at the default masks), so the exact
position and strict/loose classification are resolved only at hit groups.

The chunk walk is **speculative**: chunks are cut from the sparse hit list
alone (min-size skip, normalization switch and max-size truncation resolved
in index space, one Python step per chunk), *assuming* no boundary fires
inside the 63-byte warm-up window that follows each cut-point skip (where
the scan fingerprint has consumed fewer than 64 bytes since its reset and
differs from the full-window lag sum).  The warm-up windows of a whole block
of speculated chunks are then verified in one vectorised 2-D doubling pass;
a warm-up hit (~0.4 % of chunks at the default masks) commits the prefix,
cuts at the verified position and restarts speculation from there.  The
result is byte-identical chunk boundaries to
:class:`~repro.chunking.gear.GearChunker` at an order of magnitude the
throughput (see ``benchmarks/bench_chunker_throughput.py``).

NumPy is strictly optional: this module imports without it,
:func:`numpy_available` reports the outcome, and
:func:`best_gear_chunker` (the registry entry behind
``build_chunker("gear")``) silently falls back to the pure-Python scan.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.chunking.gear import GEAR_TABLE, GearChunker
from repro.errors import ChunkingError

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched import
    _np = None

#: Bytes of the implicit gear window (64-bit fingerprint, one shift per byte).
_WINDOW = 64

#: Scan positions after a fingerprint reset whose value is *not* yet the
#: full-window lag sum (the window is still filling).
_WARMUP = _WINDOW - 1

#: Payload bytes per vectorised pass of the per-byte fallback scan.
_SLAB_BYTES = 1 << 15

#: Four-byte groups per stride-4 slab.  The group buffers (uint64) plus the
#: pair-sum and index scratch arrays must stay cache-resident across the four
#: doubling passes; 2**14 groups (64 KiB of payload) measured fastest.
_SLAB_GROUPS = 1 << 14

#: Groups of history prepended to each slab so the first on-grid sum already
#: sees its whole 64-byte window (16 groups x 4 bytes = 64 bytes).
_GROUP_OVERLAP = _WINDOW // 4

#: Below this many bytes the per-byte slab scan wins (stride-4 table and
#: reconstruction setup cost more than they save).
_STRIDE4_MIN_BYTES = 1 << 10

#: Speculated chunks per warm-up verification pass.  Adaptive: halves after
#: a mis-speculation, doubles after a clean block, so pathological inputs
#: that cut inside every warm-up window degrade gracefully.
_VERIFY_BLOCK_MIN = 8
_VERIFY_BLOCK_MAX = 256

_GEAR_NP = None
_PAIR_NP = None
_WARM_COLS = None


def numpy_available() -> bool:
    """Whether the NumPy-accelerated gear scan can be used in this process."""
    return _np is not None


def _gear_table_np():
    """The gear table as a ``uint64`` array (built once, on first use)."""
    global _GEAR_NP
    if _GEAR_NP is None:
        _GEAR_NP = _np.array(GEAR_TABLE, dtype=_np.uint64)
    return _GEAR_NP


def _pair_table_np():
    """``PAIR[b0 | b1 << 8] = (GEAR[b0] << 1) + GEAR[b1]`` for every 2-byte
    little-endian pair value (512 KiB, built once, on first use)."""
    global _PAIR_NP
    if _PAIR_NP is None:
        gear = _gear_table_np()
        pair_values = _np.arange(1 << 16, dtype=_np.uint32)
        _PAIR_NP = (gear[pair_values & 0xFF] << _np.uint64(1)) + gear[
            pair_values >> 8
        ]
    return _PAIR_NP


def _warm_cols():
    """Column indices of the warm-up verification matrix (built once)."""
    global _WARM_COLS
    if _WARM_COLS is None:
        _WARM_COLS = _np.arange(_WARMUP, dtype=_np.int64)
    return _WARM_COLS


class AcceleratedGearChunker(GearChunker):
    """Drop-in :class:`GearChunker` with a vectorised boundary scan and walk.

    Same parameters, same realized chunk-size statistics, byte-identical
    boundaries; requires NumPy (raises :class:`ChunkingError` otherwise, so
    configuration-driven selection can fall back cleanly).
    """

    def __init__(self, *args, **kwargs):
        if _np is None:
            raise ChunkingError(
                "AcceleratedGearChunker requires NumPy; install it or use the "
                "pure-Python 'gear-pure' chunker"
            )
        super().__init__(*args, **kwargs)
        # Top-bit masks make the hit test a threshold compare: the threshold
        # is the mask's lowest set bit (2**(64-bits)).
        self._thresh_strict = self._mask_strict & -self._mask_strict
        self._thresh_loose = self._mask_loose & -self._mask_loose

    # ------------------------------------------------------------------ #
    # vectorised scan: sorted mask-hit positions + strict classification
    # ------------------------------------------------------------------ #

    def scan_mask_hits(
        self, data: "bytes | bytearray | memoryview"
    ) -> Tuple[int, int]:
        """Run only the vectorised boundary scan; no chunk walk.

        Returns ``(loose_hits, strict_hits)`` over the whole buffer.  This is
        the public stage hook the ingest benchmark uses to time the raw mask
        scan separately from the speculative candidate walk
        (:meth:`cut_offsets` = scan + walk + warm-up verification).
        """
        arr = _np.frombuffer(data, dtype=_np.uint8)
        positions, strict = self._mask_hits(arr)
        return int(positions.size), int(strict.sum())

    def _mask_hits(self, arr) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """``(positions, strict)`` for the full-window fingerprint scan.

        ``positions`` is the sorted array of byte positions whose full-window
        gear fingerprint hits the *loose* mask; ``strict[i]`` is True where it
        also hits the strict mask (strict hits are a subset of loose hits --
        the strict mask carries at least as many top bits).  Only valid for
        positions that have at least 64 bytes of history; the chunk walk
        consults the arrays exclusively past each warm-up window, where that
        holds.
        """
        if (
            arr.shape[0] < _STRIDE4_MIN_BYTES
            or sys.byteorder != "little"  # pair table assumes LE uint32 views
        ):
            return self._mask_hits_bytewise(arr)
        return self._mask_hits_stride4(arr)

    def _mask_hits_bytewise(self, arr) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """Per-byte doubling-ladder scan (small inputs / big-endian hosts)."""
        np = _np
        gear = _gear_table_np()
        thresh_strict = np.uint64(self._thresh_strict)
        thresh_loose = np.uint64(self._thresh_loose)
        total = int(arr.shape[0])
        position_parts: List["np.ndarray"] = []
        strict_parts: List["np.ndarray"] = []
        capacity = min(_SLAB_BYTES + _WARMUP, total)
        lag_buffer = np.empty(capacity, dtype=np.uint64)
        scratch = np.empty(capacity, dtype=np.uint64)
        for base in range(0, total, _SLAB_BYTES):
            # Overlap each slab with the previous 63 bytes so every lag sum
            # in the slab proper sees its whole window.
            lo = base - _WARMUP if base >= _WARMUP else 0
            stop = base + _SLAB_BYTES
            if stop > total:
                stop = total
            size = stop - lo
            lag_sum = lag_buffer[:size]
            np.take(gear, arr[lo:stop], out=lag_sum)
            shift = 1
            while shift < _WINDOW and shift < size:
                width = np.uint64(shift)
                np.left_shift(lag_sum[:-shift], width, out=scratch[: size - shift])
                lag_sum[shift:] += scratch[: size - shift]
                shift <<= 1
            lag_sum = lag_sum[base - lo :]
            local = np.flatnonzero(lag_sum < thresh_loose)
            position_parts.append(local + base)
            strict_parts.append(lag_sum[local] < thresh_strict)
        if not position_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.bool_)
        return (
            np.concatenate(position_parts),
            np.concatenate(strict_parts),
        )

    def _mask_hits_stride4(self, arr) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """Stride-4 grid scan with exact off-grid reconstruction."""
        np = _np
        gear = _gear_table_np()
        pair = _pair_table_np()
        thresh_strict = np.uint64(self._thresh_strict)
        thresh_loose = np.uint64(self._thresh_loose)
        total = int(arr.shape[0])
        groups = total >> 2
        grid_view = arr[: groups << 2].view(np.uint32)
        position_parts: List["np.ndarray"] = []
        strict_parts: List["np.ndarray"] = []
        # Preallocated slab buffers (reused across slabs, allocation-free
        # inner loop).  Each slab loads one group past its end so the
        # off-grid reconstruction of its last group has the next group's
        # pair sums in cache.
        capacity = min(_SLAB_GROUPS + _GROUP_OVERLAP + 1, groups)
        pair_lo = np.empty(capacity, dtype=np.uint64)
        pair_hi = np.empty(capacity, dtype=np.uint64)
        grid = np.empty(capacity, dtype=np.uint64)
        scratch = np.empty(capacity, dtype=np.uint64)
        recon_1 = np.empty(capacity, dtype=np.uint64)
        recon_2 = np.empty(capacity, dtype=np.uint64)
        recon_3 = np.empty(capacity, dtype=np.uint64)
        combined = np.empty(capacity, dtype=np.uint64)
        index_lo = np.empty(capacity, dtype=np.uint32)
        index_hi = np.empty(capacity, dtype=np.uint32)
        index_byte = np.empty(capacity, dtype=np.uint32)
        shift_1 = np.uint64(1)
        shift_2 = np.uint64(2)
        shift_16 = np.uint32(16)
        mask_16 = np.uint32(0xFFFF)
        mask_8 = np.uint32(0xFF)
        doubling_shifts = (np.uint64(4), np.uint64(8), np.uint64(16), np.uint64(32))
        grid_offsets = np.array([3, 4, 5, 6], dtype=np.int64)
        for base in range(0, groups, _SLAB_GROUPS):
            lo = base - _GROUP_OVERLAP if base >= _GROUP_OVERLAP else 0
            stop = base + _SLAB_GROUPS
            if stop > groups:
                stop = groups
            hi = stop + 1 if stop < groups else groups
            size = hi - lo
            count = stop - base
            offset = base - lo
            slab = grid_view[lo:hi]
            lo16 = index_lo[:size]
            hi16 = index_hi[:size]
            np.bitwise_and(slab, mask_16, out=lo16)
            np.right_shift(slab, shift_16, out=hi16)
            sums_lo = pair_lo[:size]
            sums_hi = pair_hi[:size]
            np.take(pair, lo16, out=sums_lo, mode="clip")
            np.take(pair, hi16, out=sums_hi, mode="clip")
            # Per-group gear sum: GEAR[b0]<<3 + GEAR[b1]<<2 + GEAR[b2]<<1 + GEAR[b3].
            lag_sum = grid[:size]
            np.left_shift(sums_lo, shift_2, out=lag_sum)
            lag_sum += sums_hi
            # Four doubling passes (lag w groups, shift 4w bits) give the
            # full 64-byte window fingerprint at every position 4m + 3.
            width = 1
            for shift in doubling_shifts:
                if width >= size:
                    break
                np.left_shift(lag_sum[:-width], shift, out=scratch[: size - width])
                lag_sum[width:] += scratch[: size - width]
                width <<= 1
            on_grid = lag_sum[offset : offset + count]
            # Reconstruct the three off-grid positions of each group from the
            # on-grid value: F_{j+1} = (F_j << 1) + GEAR[b_{j+1}].  Position
            # 4m+5 reuses the next group's low pair sum whole; 4m+4 and 4m+6
            # need one byte-table gather each.  The last group overall has no
            # next group, so it stays grid-only (handled below).
            recon = min(count, groups - base - 1)
            if recon > 0:
                next_lo16 = lo16[offset + 1 : offset + 1 + recon]
                next_hi16 = hi16[offset + 1 : offset + 1 + recon]
                off_2 = recon_2[:recon]
                np.left_shift(on_grid[:recon], shift_2, out=off_2)
                off_2 += sums_lo[offset + 1 : offset + 1 + recon]
                byte_index = index_byte[:recon]
                np.bitwise_and(next_lo16, mask_8, out=byte_index)
                off_1 = recon_1[:recon]
                np.left_shift(on_grid[:recon], shift_1, out=off_1)
                np.take(gear, byte_index, out=scratch[:recon], mode="clip")
                off_1 += scratch[:recon]
                np.bitwise_and(next_hi16, mask_8, out=byte_index)
                off_3 = recon_3[:recon]
                np.left_shift(off_2, shift_1, out=off_3)
                np.take(gear, byte_index, out=scratch[:recon], mode="clip")
                off_3 += scratch[:recon]
                low = combined[:recon]
                np.minimum(on_grid[:recon], off_1, out=low)
                np.minimum(low, off_2, out=low)
                np.minimum(low, off_3, out=low)
                hit_groups = np.flatnonzero(low < thresh_loose)
                if hit_groups.size:
                    values = np.empty((hit_groups.size, 4), dtype=np.uint64)
                    values[:, 0] = on_grid[hit_groups]
                    values[:, 1] = off_1[hit_groups]
                    values[:, 2] = off_2[hit_groups]
                    values[:, 3] = off_3[hit_groups]
                    group_idx, lane_idx = np.nonzero(values < thresh_loose)
                    # nonzero is row-major and lanes map to offsets 3..6, so
                    # the emitted positions stay sorted.
                    position_parts.append(
                        (hit_groups[group_idx] + base) * 4 + grid_offsets[lane_idx]
                    )
                    strict_parts.append(values[group_idx, lane_idx] < thresh_strict)
            if recon < count:
                tail_grid = on_grid[recon:]
                tail_hits = np.flatnonzero(tail_grid < thresh_loose)
                if tail_hits.size:
                    position_parts.append((tail_hits + base + recon) * 4 + 3)
                    strict_parts.append(tail_grid[tail_hits] < thresh_strict)
        covered = groups << 2
        if covered < total:
            # Up to 3 trailing bytes (and the off-grid positions of the very
            # last group) fall outside the grid; finish them with one small
            # per-byte doubling pass.
            lo = covered - _WARMUP if covered >= _WARMUP else 0
            tail = arr[lo:total]
            size = total - lo
            lag_sum = np.take(gear, tail)
            shift = 1
            while shift < _WINDOW and shift < size:
                width = np.uint64(shift)
                lag_sum[shift:] += lag_sum[: size - shift] << width
                shift <<= 1
            tail_view = lag_sum[covered - lo :]
            tail_hits = np.flatnonzero(tail_view < thresh_loose)
            if tail_hits.size:
                position_parts.append(tail_hits + covered)
                strict_parts.append(tail_view[tail_hits] < thresh_strict)
        if not position_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.bool_)
        return (
            np.concatenate(position_parts),
            np.concatenate(strict_parts),
        )

    # ------------------------------------------------------------------ #
    # warm-up verification
    # ------------------------------------------------------------------ #

    def _first_warmup_hit(
        self, arr, warm_begins, warm_lens, strict_cols, buffers
    ) -> Optional[Tuple[int, int]]:
        """First (row, column) warm-up boundary across a speculated block.

        Each row is one chunk's warm-up window: ``warm_lens[r]`` bytes from
        ``warm_begins[r]``, the first ``strict_cols[r]`` of which are judged
        by the strict mask (the rest by the loose mask).  The per-row prefix
        fingerprints are the reset recurrence, computed for all rows at once
        with the doubling ladder along the row axis.  Returns None when no
        window fires -- the speculative cuts stand.
        """
        np = _np
        rows = len(warm_begins)
        index, window, fingerprints, scratch, base_thresholds = buffers
        cols = _warm_cols()
        # Column-major layout -- window *offset* along axis 0, chunk along
        # axis 1 -- so every slice the doubling ladder touches is contiguous
        # (a row-major layout would make each pass a strided 63-element
        # inner loop per chunk, an order of magnitude slower).
        index = index[:, :rows]
        np.add(np.array(warm_begins, dtype=np.int64)[None, :], cols[:, None], out=index)
        window = window[:, :rows]
        np.take(arr, index, mode="clip", out=window)
        fingerprints = fingerprints[:, :rows]
        np.take(_gear_table_np(), window, out=fingerprints)
        scratch = scratch[:, :rows]
        shift = 1
        while shift < _WARMUP:
            width = np.uint64(shift)
            np.left_shift(
                fingerprints[: _WARMUP - shift], width, out=scratch[: _WARMUP - shift]
            )
            fingerprints[shift:] += scratch[: _WARMUP - shift]
            shift <<= 1
        # Common case: every window is the full 63 bytes and switches masks at
        # the same offset (the normalization point is a fixed chunk-relative
        # offset) -- one broadcast threshold column, no validity mask.
        common_limit = self._normal_point - self.min_size
        if (
            min(warm_lens) == _WARMUP
            and all(limit == common_limit for limit in strict_cols)
        ):
            hits = fingerprints < base_thresholds[:, None]
        else:
            lens = np.array(warm_lens, dtype=np.int64)
            strict_limit = np.array(strict_cols, dtype=np.int64)
            thresholds = np.where(
                cols[:, None] < strict_limit[None, :],
                np.uint64(self._thresh_strict),
                np.uint64(self._thresh_loose),
            )
            hits = (fingerprints < thresholds) & (cols[:, None] < lens[None, :])
        hit_chunks = hits.any(axis=0)
        if not hit_chunks.any():
            return None
        row = int(np.argmax(hit_chunks))
        return row, int(np.argmax(hits[:, row]))

    # ------------------------------------------------------------------ #
    # the chunk walk
    # ------------------------------------------------------------------ #

    def cut_offsets(self, data: "bytes | bytearray | memoryview") -> Iterator[int]:
        length = len(data)
        if length <= self.min_size:
            if length:
                yield length
            return
        np = _np
        arr = np.frombuffer(data, dtype=np.uint8)
        positions_np, strict_np = self._mask_hits(arr)
        # Python lists beat ndarray scalar indexing by a wide margin in the
        # per-chunk cursor walk below.
        hits = positions_np.tolist()
        num_hits = len(hits)
        # next_strict[i]: index of the first strict hit at or after hit i
        # (num_hits when none remains).  Most hits are loose-only, so the
        # walk jumps straight to each chunk's deciding hit instead of
        # scanning the loose hits in between one Python iteration at a time.
        if num_hits:
            strict_indices = np.flatnonzero(strict_np)
            ahead = np.searchsorted(strict_indices, np.arange(num_hits))
            next_strict = np.concatenate(
                (strict_indices, [num_hits])
            )[ahead].tolist()
        else:
            next_strict = []
        min_size = self.min_size
        max_size = self.max_size
        normal_point = self._normal_point
        cols = _warm_cols()
        verify_buffers = (
            np.empty((_WARMUP, _VERIFY_BLOCK_MAX), dtype=np.int64),
            np.empty((_WARMUP, _VERIFY_BLOCK_MAX), dtype=arr.dtype),
            np.empty((_WARMUP, _VERIFY_BLOCK_MAX), dtype=np.uint64),
            np.empty((_WARMUP, _VERIFY_BLOCK_MAX), dtype=np.uint64),
            np.where(
                cols < normal_point - min_size,
                np.uint64(self._thresh_strict),
                np.uint64(self._thresh_loose),
            ),
        )
        start = 0
        cursor = 0
        block_cap = _VERIFY_BLOCK_MAX
        while start < length:
            # Speculate a block of chunks from the hit arrays alone, assuming
            # no warm-up window fires.  One Python iteration per chunk; the
            # cursors only ever move forward within a block.
            spec_cuts: List[int] = []
            warm_begins: List[int] = []
            warm_lens: List[int] = []
            strict_cols: List[int] = []
            block_start = start
            block_cursor = cursor
            while block_start < length and len(spec_cuts) < block_cap:
                remaining = length - block_start
                if remaining <= min_size:
                    spec_cuts.append(length)
                    warm_begins.append(0)
                    warm_lens.append(0)
                    strict_cols.append(0)
                    block_start = length
                    break
                end = block_start + max_size if remaining > max_size else length
                strict_end = block_start + normal_point
                if strict_end > end:
                    strict_end = end
                warm_begin = block_start + min_size
                warm_end = warm_begin + _WARMUP
                if warm_end > end:
                    warm_end = end
                block_cursor = bisect_left(hits, warm_end, block_cursor)
                cut = 0
                probe = block_cursor
                if probe < num_hits:
                    # Before the normalization point only strict hits cut;
                    # next_strict jumps over the loose hits in between.
                    strict_probe = next_strict[probe]
                    if strict_probe < num_hits and hits[strict_probe] < strict_end:
                        cut = hits[strict_probe] + 1
                        probe = strict_probe
                    else:
                        # Past the normalization point any loose hit cuts.
                        probe = bisect_left(hits, strict_end, probe)
                        if probe < num_hits and hits[probe] < end:
                            cut = hits[probe] + 1
                if not cut:
                    cut = end
                spec_cuts.append(cut)
                warm_begins.append(warm_begin)
                warm_lens.append(warm_end - warm_begin)
                limit = strict_end - warm_begin
                strict_cols.append(limit if limit > 0 else 0)
                block_start = cut
                block_cursor = probe
            failure = self._first_warmup_hit(
                arr, warm_begins, warm_lens, strict_cols, verify_buffers
            )
            if failure is None:
                for cut in spec_cuts:
                    yield cut
                start = block_start
                cursor = block_cursor
                if block_cap < _VERIFY_BLOCK_MAX:
                    block_cap <<= 1
            else:
                row, col = failure
                for cut in spec_cuts[:row]:
                    yield cut
                corrected = warm_begins[row] + col + 1
                yield corrected
                start = corrected
                cursor = bisect_left(hits, corrected)
                if block_cap > _VERIFY_BLOCK_MIN:
                    block_cap >>= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return super().__repr__().replace("GearChunker", "AcceleratedGearChunker", 1)


def best_gear_chunker(**kwargs) -> GearChunker:
    """The fastest gear chunker importable here: accelerated, else pure.

    This is what the registry binds to the ``"gear"`` name, so callers that
    select chunkers by configuration inherit the NumPy speedup automatically
    and keep working (bit-identically) where NumPy is absent.
    """
    if _np is not None:
        return AcceleratedGearChunker(**kwargs)
    return GearChunker(**kwargs)
