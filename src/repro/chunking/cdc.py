"""Basic content-defined chunking (CDC).

This is the classic LBFS/Cumulus-style chunker: slide a Rabin hash over the
stream and declare a boundary wherever ``hash mod divisor == divisor - 1``,
subject to minimum and maximum chunk-size limits.

The boundary divisor is *calibrated*: chunk lengths follow a geometric
distribution shifted by ``min_size`` and truncated at ``max_size``, so naively
using ``divisor = average_size`` (or rounding ``average_size - min_size`` down
to a power of two, as this module once did) realizes a mean chunk size far
from the configured average.  :func:`solve_divisor` inverts the truncated
geometric mean instead, so the realized mean matches ``average_size`` on
random data and :attr:`ContentDefinedChunker.average_chunk_size` reports the
exact expectation implied by the chosen parameters.

The paper evaluates CDC with a 4 KB *average* chunk size (Figure 5(a)) and
finds that its higher chunking cost makes static chunking more *efficient*
(bytes saved per second) even though CDC finds slightly more redundancy.

The hot path is an inlined table-driven scan (no per-byte method calls); the
byte-at-a-time :class:`~repro.chunking.rabin.RabinRollingHash` formulation is
preserved as :meth:`ContentDefinedChunker.chunk_reference` for equivalence
tests and as the throughput baseline of ``bench_chunker_throughput``.
"""

from __future__ import annotations

from typing import Iterator

from repro.chunking.base import Chunker, RawChunk
from repro.chunking.rabin import (
    RABIN_WINDOW_SIZE,
    RabinRollingHash,
    _MASK64,
    _MULTIPLIER,
)
from repro.errors import ValidationError

#: Upper bound for divisor search; far beyond any realistic chunk size.
_MAX_DIVISOR = 1 << 40


def expected_gap(divisor: int, span: int) -> float:
    """Expected bytes beyond ``min_size`` before a cut, boundary odds 1/divisor.

    The scan performs ``span = max_size - min_size`` Bernoulli boundary trials
    (one per byte past the minimum) and forces a cut if all fail, so the gap
    ``G`` satisfies ``P(G >= k) = q**k`` with ``q = 1 - 1/divisor``, giving
    ``E[G] = sum_{k=1..span} q**k``.
    """
    if divisor <= 1:
        return 0.0
    q = 1.0 - 1.0 / divisor
    return q * (1.0 - q ** span) / (1.0 - q)


def solve_divisor(average_size: int, min_size: int, max_size: int) -> int:
    """The boundary divisor whose truncated-geometric mean hits ``average_size``.

    Monotone bisection on :func:`expected_gap`; clamps to the degenerate ends
    when the requested average lies outside ``(min_size, max_size)``.
    """
    span = max_size - min_size
    target = average_size - min_size
    if target <= 0:
        return 1  # cut as early as allowed; mean == min_size
    if target >= span:
        return _MAX_DIVISOR  # boundaries effectively never fire; mean ~= max_size
    low, high = 1, _MAX_DIVISOR
    while low < high:
        mid = (low + high) // 2
        if expected_gap(mid, span) < target:
            low = mid + 1
        else:
            high = mid
    return low


class ContentDefinedChunker(Chunker):
    """Rabin-hash based variable-size chunker.

    Parameters
    ----------
    average_size:
        Target average chunk size in bytes; the boundary divisor is solved so
        the realized mean matches it on random data.
    min_size:
        Minimum chunk size; the hash is not even consulted before this many
        bytes have accumulated, which both bounds metadata overhead and speeds
        up chunking.
    max_size:
        Hard maximum chunk size; a boundary is forced at this length.
    window_size:
        Rabin window width in bytes.
    """

    def __init__(
        self,
        average_size: int = 4096,
        min_size: int | None = None,
        max_size: int | None = None,
        window_size: int = RABIN_WINDOW_SIZE,
    ):
        if average_size < 64:
            raise ValidationError("average_size must be >= 64 bytes")
        self._average_size = average_size
        self.min_size = min_size if min_size is not None else average_size // 4
        self.max_size = max_size if max_size is not None else average_size * 4
        if self.min_size < 1 or self.min_size >= self.max_size:
            raise ValidationError("require 1 <= min_size < max_size")
        self.window_size = window_size
        self._divisor = solve_divisor(average_size, self.min_size, self.max_size)
        self._magic = self._divisor - 1
        self._out_table = RabinRollingHash._build_out_table(window_size)
        self._expected_size = self.min_size + expected_gap(
            self._divisor, self.max_size - self.min_size
        )

    @property
    def average_chunk_size(self) -> int:
        """The realized expected chunk size on random data (not the request)."""
        return round(self._expected_size)

    @property
    def divisor(self) -> int:
        """The calibrated boundary divisor (boundary odds are 1/divisor)."""
        return self._divisor

    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        if not data:
            return
        length = len(data)
        min_size = self.min_size
        max_size = self.max_size
        window_size = self.window_size
        out_table = self._out_table
        divisor = self._divisor
        magic = self._magic
        multiplier = _MULTIPLIER
        mask64 = _MASK64
        start = 0
        while start < length:
            remaining = length - start
            end = start + max_size if remaining > max_size else length
            cut = end
            # The hash at a test position depends on at most the preceding
            # window, so warming up over the window just before the first
            # test position (start + min_size) reproduces the reference scan
            # while skipping most of the minimum-size region.
            if min_size > window_size:
                position = start + min_size - window_size
            else:
                position = start
            warm_end = position + window_size
            if warm_end > end:
                warm_end = end
            value = 0
            found = False
            # Warm-up: the zero-initialised window slides out only zero bytes
            # (out_table[0] == 0), so outgoing terms vanish.
            for byte in data[position:warm_end]:
                value = (value * multiplier + byte) & mask64
                position += 1
                if position - start >= min_size and value % divisor == magic:
                    cut = position
                    found = True
                    break
            if not found:
                # Steady state: position - start >= max(min_size, window_size)
                # here, so the minimum-size guard is statically satisfied.
                for incoming, outgoing in zip(
                    data[position:end], data[position - window_size:end - window_size]
                ):
                    value = (value * multiplier + incoming - out_table[outgoing]) & mask64
                    position += 1
                    if value % divisor == magic:
                        cut = position
                        break
            yield RawChunk(data=data[start:cut], offset=start)
            start = cut

    def chunk_reference(self, data: bytes) -> Iterator[RawChunk]:
        """Byte-at-a-time reference scan driven by :class:`RabinRollingHash`.

        Kept as the ground truth the inlined :meth:`chunk` must reproduce
        exactly, and as the pre-optimisation throughput baseline.
        """
        if not data:
            return
        hasher = RabinRollingHash(self.window_size)
        start = 0
        position = 0
        length = len(data)
        divisor = self._divisor
        magic = self._magic
        while position < length:
            hasher.update(data[position])
            position += 1
            chunk_length = position - start
            at_boundary = (
                chunk_length >= self.min_size
                and hasher.value % divisor == magic
            )
            if at_boundary or chunk_length >= self.max_size:
                yield RawChunk(data=data[start:position], offset=start)
                start = position
                hasher.reset()
        if start < length:
            yield RawChunk(data=data[start:length], offset=start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContentDefinedChunker(average_size={self._average_size}, "
            f"min_size={self.min_size}, max_size={self.max_size})"
        )
