"""Basic content-defined chunking (CDC).

This is the classic LBFS/Cumulus-style chunker: slide a Rabin hash over the
stream and declare a boundary wherever ``hash mod divisor == divisor - 1``,
subject to minimum and maximum chunk-size limits.  The expected chunk size is
approximately ``min_size + divisor`` bytes.

The paper evaluates CDC with a 4 KB *average* chunk size (Figure 5(a)) and
finds that its higher chunking cost makes static chunking more *efficient*
(bytes saved per second) even though CDC finds slightly more redundancy.
"""

from __future__ import annotations

from typing import Iterator

from repro.chunking.base import Chunker, RawChunk
from repro.chunking.rabin import RabinRollingHash, RABIN_WINDOW_SIZE


class ContentDefinedChunker(Chunker):
    """Rabin-hash based variable-size chunker.

    Parameters
    ----------
    average_size:
        Target average chunk size in bytes (the boundary divisor).
    min_size:
        Minimum chunk size; the hash is not even consulted before this many
        bytes have accumulated, which both bounds metadata overhead and speeds
        up chunking.
    max_size:
        Hard maximum chunk size; a boundary is forced at this length.
    window_size:
        Rabin window width in bytes.
    """

    def __init__(
        self,
        average_size: int = 4096,
        min_size: int | None = None,
        max_size: int | None = None,
        window_size: int = RABIN_WINDOW_SIZE,
    ):
        if average_size < 64:
            raise ValueError("average_size must be >= 64 bytes")
        self._average_size = average_size
        self.min_size = min_size if min_size is not None else average_size // 4
        self.max_size = max_size if max_size is not None else average_size * 4
        if self.min_size < 1 or self.min_size >= self.max_size:
            raise ValueError("require 1 <= min_size < max_size")
        self.window_size = window_size
        # Boundary condition: low bits of the rolling hash equal a fixed magic
        # value.  Using a power-of-two divisor makes the test a mask.
        self._divisor = 1 << max(6, (average_size - self.min_size).bit_length() - 1)
        self._magic = self._divisor - 1

    @property
    def average_chunk_size(self) -> int:
        return self._average_size

    def chunk(self, data: bytes) -> Iterator[RawChunk]:
        if not data:
            return
        hasher = RabinRollingHash(self.window_size)
        start = 0
        position = 0
        length = len(data)
        mask = self._divisor - 1
        magic = self._magic
        while position < length:
            hasher.update(data[position])
            position += 1
            chunk_length = position - start
            at_boundary = (
                chunk_length >= self.min_size
                and (hasher.value & mask) == magic
            )
            if at_boundary or chunk_length >= self.max_size:
                yield RawChunk(data=data[start:position], offset=start)
                start = position
                hasher.reset()
        if start < length:
            yield RawChunk(data=data[start:length], offset=start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContentDefinedChunker(average_size={self._average_size}, "
            f"min_size={self.min_size}, max_size={self.max_size})"
        )
