"""Deterministic fault injection for crash/recovery and failover testing.

:class:`~repro.faults.plan.FaultPlan` is a seeded plan of storage and
availability faults -- kill the process at the K-th spill (at a chosen phase
of the data-first/journal-second write ordering), tear the journal line,
fail spill reads with a seeded probability, or take nodes dark for windows
of the cluster read-operation clock.  It implements the
:class:`~repro.storage.backends.SpillFaultHook` and
:class:`~repro.cluster.cluster.ClusterFaultHook` protocols; install it with
:meth:`~repro.faults.plan.FaultPlan.install` on a framework, cluster, node
or backend.  Uninstrumented runs pay one ``is not None`` check per hook
site and nothing else.
"""

from repro.faults.plan import (
    KILL_PHASES,
    FaultPlan,
    NodeDownWindow,
)

__all__ = [
    "FaultPlan",
    "KILL_PHASES",
    "NodeDownWindow",
]
