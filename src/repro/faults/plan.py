"""Seeded fault plans: crash-at-spill, torn journals, read faults, dark nodes.

A :class:`FaultPlan` is deterministic by construction: every probabilistic
decision draws from one ``random.Random(seed)``, the crash trigger counts
spill events, and node-down windows are expressed on the cluster's
read-operation clock -- so a plan replays identically given the same
workload, which is what lets crash/recovery tests assert exact outcomes.

The plan implements both hook protocols behind the framework's zero-cost
guards (:class:`~repro.storage.backends.SpillFaultHook` for the spill plane,
:class:`~repro.cluster.cluster.ClusterFaultHook` for the read plane).  The
four kill phases map one-to-one onto the crash points of the
data-first/journal-second seal ordering:

``before-data``
    Crash before the spill file is written: nothing of the seal survives.
``mid-data``
    Crash mid-``write``: a truncated ``.cdata`` with no journal record --
    recovery unlinks it as an orphan.
``after-data``
    Crash between the data write and the journal append: an intact but
    unreferenced ``.cdata`` -- still an orphan, still unlinked.
``torn-journal``
    Crash mid journal ``write``: a checksummed record prefix -- replay
    discards the torn line and unlinks the file it referenced.

In every phase the container was never acknowledged to the client, so
recovery dropping it is correctness, not loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.runtime import GuardLock, guarded_lock
from repro.errors import (
    FaultInjectionError,
    InjectedReadError,
    RpcDroppedError,
    SimulatedCrashError,
    ValidationError,
)
from repro.storage.backends import FileContainerBackend

if TYPE_CHECKING:
    from repro.storage.container import Container

KILL_PHASES = ("before-data", "mid-data", "after-data", "torn-journal")
"""Crash points of the seal's data-first/journal-second write ordering."""


@dataclass(frozen=True)
class NodeDownWindow:
    """One node dark for ``[start_op, end_op)`` of the read-operation clock.

    The clock ticks once per cluster read operation (each
    ``DedupeCluster.read_chunks`` batch consults the plan exactly once), so
    windows are deterministic for a given restore workload.
    """

    node_id: int
    start_op: int
    end_op: int

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValidationError("node_id must be non-negative")
        if not 0 <= self.start_op <= self.end_op:
            raise ValidationError(
                f"node-down window must satisfy 0 <= start_op <= end_op, "
                f"got [{self.start_op}, {self.end_op})"
            )

    def contains(self, op: int) -> bool:
        return self.start_op <= op < self.end_op


@dataclass
class FaultPlan:
    """A deterministic, installable plan of storage and availability faults.

    Parameters
    ----------
    seed:
        Seeds the private ``random.Random`` behind probabilistic faults.
    kill_at_spill:
        1-based index of the spill event (counted across every backend the
        plan is installed on) that crashes; ``None`` never crashes.  The
        crash fires once: the raised
        :class:`~repro.errors.SimulatedCrashError` stands in for the process
        dying, and the test harness catches it where a real kill would end
        the process.
    kill_phase:
        Which crash point of the seal ordering fires (see module docstring);
        one of :data:`KILL_PHASES`.
    torn_fraction:
        How much of the interrupted write survives, for the partial-write
        phases: the fraction of the spill blob written in ``mid-data``, or
        of the journal line in ``torn-journal``.  Clamped so the artifact is
        genuinely torn (never the complete write).
    read_error_probability:
        Per-spill-load probability of raising
        :class:`~repro.errors.InjectedReadError` -- a transient read fault
        the cluster's bounded-retry/failover plane must absorb.
    node_down_windows:
        :class:`NodeDownWindow` list consulted by the cluster read plane.
    drop_rpc:
        1-based indices on the transport RPC clock at which a read-plane RPC
        is dropped before it is sent: the proxy raises
        :class:`~repro.errors.RpcDroppedError`, a retryable transient the
        transport's bounded-retry/failover plane must absorb.  (Dropping an
        idempotent read request and dropping its response are equivalent to
        the caller, so one fault models both.)  The clock ticks once per
        consulted RPC, giving deterministic replay for a fixed workload.
    delay_rpc:
        ``(rpc_index, seconds)`` pairs injecting network latency before the
        indexed RPC is sent -- exercises the retry/backoff path's tolerance
        of slow links without nondeterminism.
    """

    seed: int = 0
    kill_at_spill: Optional[int] = None
    kill_phase: str = "torn-journal"
    torn_fraction: float = 0.5
    read_error_probability: float = 0.0
    node_down_windows: Sequence[NodeDownWindow] = field(default_factory=tuple)
    drop_rpc: Sequence[int] = field(default_factory=tuple)
    delay_rpc: Sequence[Tuple[int, float]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kill_phase not in KILL_PHASES:
            raise ValidationError(
                f"kill_phase must be one of {KILL_PHASES}, got {self.kill_phase!r}"
            )
        if self.kill_at_spill is not None and self.kill_at_spill < 1:
            raise ValidationError("kill_at_spill is 1-based and must be >= 1")
        if not 0.0 <= self.torn_fraction <= 1.0:
            raise ValidationError("torn_fraction must be within [0, 1]")
        if not 0.0 <= self.read_error_probability <= 1.0:
            raise ValidationError("read_error_probability must be within [0, 1]")
        if any(index < 1 for index in self.drop_rpc):
            raise ValidationError("drop_rpc indices are 1-based and must be >= 1")
        if any(index < 1 or seconds < 0 for index, seconds in self.delay_rpc):
            raise ValidationError(
                "delay_rpc entries need a 1-based index and a non-negative delay"
            )
        self._drop_rpc_set = frozenset(self.drop_rpc)
        self._delay_rpc_map = dict(self.delay_rpc)
        self._rng = Random(self.seed)
        self._lock: GuardLock = guarded_lock("FaultPlan._lock")
        self.spills_seen = 0  # guarded-by: _lock
        self.reads_seen = 0  # guarded-by: _lock
        self.ops_seen = 0  # guarded-by: _lock
        self.rpcs_seen = 0  # guarded-by: _lock
        self.injected_read_errors = 0  # guarded-by: _lock
        self.dropped_rpcs = 0  # guarded-by: _lock
        self.crashed = False  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #

    def install(self, target: Any) -> int:
        """Arm this plan on ``target``; returns how many hooks were installed.

        Duck-dispatches on shape: a framework facade (anything with a
        ``.cluster``) installs on its cluster; a cluster installs the
        node-down hook on itself and the spill hook on every node's primary
        file backend; a node installs on its primary backend; a
        :class:`~repro.storage.backends.FileContainerBackend` installs
        directly.  Replica backends are deliberately left uninstrumented:
        faults model the primary plane failing, and the failover path must
        stay readable for the tests to mean anything.
        """
        cluster = getattr(target, "cluster", None)
        if cluster is not None:
            target = cluster
        installed = 0
        if hasattr(target, "nodes") and hasattr(target, "install_fault_hook"):
            target.install_fault_hook(self)
            installed += 1
            for node in target.nodes:
                installed += self._install_backend(node.container_backend)
            return installed
        if hasattr(target, "node_proxies") and hasattr(target, "install_fault_hook"):
            # A process-transport cluster: the spill plane lives in worker
            # processes this plan cannot reach, so only the RPC-plane hooks
            # (node-down windows, drop/delay faults) are armed.
            target.install_fault_hook(self)
            return 1
        backend = getattr(target, "container_backend", None)
        if backend is not None:
            return self._install_backend(backend)
        if isinstance(target, FileContainerBackend):
            return self._install_backend(target)
        raise FaultInjectionError(
            f"cannot install a fault plan on {type(target).__name__}: expected "
            f"a framework, cluster, node, or file container backend"
        )

    def _install_backend(self, backend: Any) -> int:
        if isinstance(backend, FileContainerBackend):
            backend.install_fault_hook(self)
            return 1
        return 0

    # ------------------------------------------------------------------ #
    # SpillFaultHook protocol
    # ------------------------------------------------------------------ #

    def on_spill(
        self, backend: FileContainerBackend, container: "Container", blob: bytes
    ) -> None:
        with self._lock:
            self.spills_seen += 1
            if not self._kill_due_locked():
                return
            if self.kill_phase not in ("before-data", "mid-data"):
                return
            self.crashed = True
            phase = self.kill_phase
        if phase == "mid-data":
            torn = self._torn_length(len(blob))
            backend._write_spill_file(  # noqa: SLF001 - the hook is part of the backend's seal path
                backend.spill_path(container.container_id), blob[:torn]
            )
            raise SimulatedCrashError(
                f"injected crash mid-data-write for container "
                f"{container.container_id} ({torn}/{len(blob)} bytes written)"
            )
        raise SimulatedCrashError(
            f"injected crash before the data write for container "
            f"{container.container_id}"
        )

    def journal_tear(
        self, backend: FileContainerBackend, encoded: bytes
    ) -> Optional[int]:
        with self._lock:
            if not self._kill_due_locked():
                return None
            if self.kill_phase not in ("after-data", "torn-journal"):
                return None
            self.crashed = True
            phase = self.kill_phase
        if phase == "torn-journal":
            # The backend appends this prefix and raises SimulatedCrashError.
            return self._torn_length(len(encoded))
        raise SimulatedCrashError(
            "injected crash between the data write and the journal append"
        )

    def on_spill_read(
        self, backend: FileContainerBackend, container: "Container"
    ) -> None:
        if self.read_error_probability <= 0.0:
            return
        with self._lock:
            self.reads_seen += 1
            faulty = self._rng.random() < self.read_error_probability
            if faulty:
                self.injected_read_errors += 1
        if faulty:
            raise InjectedReadError(
                f"injected transient read fault for container "
                f"{container.container_id} "
                f"({backend.spill_path(container.container_id)})"
            )

    # ------------------------------------------------------------------ #
    # ClusterFaultHook protocol
    # ------------------------------------------------------------------ #

    def node_is_down(self, node_id: int) -> bool:
        with self._lock:
            op = self.ops_seen
            self.ops_seen += 1
            return any(
                window.node_id == node_id and window.contains(op)
                for window in self.node_down_windows
            )

    # ------------------------------------------------------------------ #
    # TransportFaultHook protocol
    # ------------------------------------------------------------------ #

    def rpc_fault(self, node_id: int, op: str) -> float:
        """Tick the RPC clock for one read-plane RPC; returns the injected
        send delay in seconds, raising :class:`~repro.errors.RpcDroppedError`
        when this tick is on the drop schedule."""
        with self._lock:
            self.rpcs_seen += 1
            rpc = self.rpcs_seen
            dropped = rpc in self._drop_rpc_set
            if dropped:
                self.dropped_rpcs += 1
            delay = self._delay_rpc_map.get(rpc, 0.0)
        if dropped:
            raise RpcDroppedError(
                f"injected rpc drop at rpc {rpc} (node {node_id}, op {op!r})"  # unguarded-ok: snapshot of the ordinal taken under the lock
            )
        return delay

    # ------------------------------------------------------------------ #
    # internals & reporting
    # ------------------------------------------------------------------ #

    def _kill_due_locked(self) -> bool:  # holds-lock: _lock
        """Whether the current spill is the (not yet fired) crash target."""
        return (
            self.kill_at_spill is not None
            and not self.crashed
            and self.spills_seen >= self.kill_at_spill
        )

    def _torn_length(self, full_length: int) -> int:
        """Bytes of an interrupted write that survive: strictly fewer than
        ``full_length`` (a complete write would not be a tear)."""
        if full_length <= 0:
            return 0
        torn = int(full_length * self.torn_fraction)
        return min(torn, full_length - 1)

    def describe(self) -> Dict[str, int]:
        """Counters snapshot for tests and the recovery bench stage."""
        with self._lock:
            return {
                "spills_seen": self.spills_seen,
                "reads_seen": self.reads_seen,
                "ops_seen": self.ops_seen,
                "rpcs_seen": self.rpcs_seen,
                "injected_read_errors": self.injected_read_errors,
                "dropped_rpcs": self.dropped_rpcs,
                "crashed": int(self.crashed),
            }
