"""Offline spill-plane recovery: replay manifest journals, report, exit.

``python -m repro.storage.recovery <storage_dir>`` walks a framework storage
directory (one ``node-<id>`` subdirectory per node, each optionally holding a
``replicas/`` spill plane) -- or a single backend directory containing a
``manifest.jsonl`` -- and replays every journal it finds.  Replay is the same
crash-consistency pass the in-process path runs
(:meth:`~repro.storage.backends.FileContainerBackend.replay_journal`): torn
journal tails are truncated away, orphaned and corrupt ``.cdata`` files are
unlinked, and what remains is the exact set of fully-acknowledged sealed
containers.

This is storage-only triage.  It does not rebuild node indexes or director
recipes; use :meth:`repro.core.framework.SigmaDedupe.recover_storage` for the
full disaster path.  Running it is idempotent -- a clean plane replays to
itself.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.storage.backends import FileContainerBackend, SpillRecovery
from repro.storage.journal import MANIFEST_NAME


def discover_planes(storage_dir: Path) -> Iterator[Path]:
    """Yield every journaled spill plane under ``storage_dir``.

    A plane is any directory holding a ``manifest.jsonl``: the directory
    itself, its ``node-<id>`` children, and each node's ``replicas/``
    subdirectory.  Yields in deterministic (sorted) order.
    """
    if (storage_dir / MANIFEST_NAME).is_file():
        yield storage_dir
    for node_dir in sorted(storage_dir.glob("node-*")):
        if (node_dir / MANIFEST_NAME).is_file():
            yield node_dir
        for child in sorted(node_dir.glob("*/")):
            if (child / MANIFEST_NAME).is_file():
                yield child


def recover_plane(
    plane_dir: Path, verify_data: bool = True
) -> Tuple[Path, SpillRecovery]:
    """Replay one plane's journal and release the backend immediately."""
    backend = FileContainerBackend.recover(plane_dir, verify_data=verify_data)
    try:
        recovery = backend.last_recovery
        if recovery is None:  # pragma: no cover - recover() always sets it
            raise ReproError(f"recovery of {plane_dir} produced no report")
        return plane_dir, recovery
    finally:
        backend.close()


def recover_tree(
    storage_dir: Path, verify_data: bool = True
) -> List[Tuple[Path, SpillRecovery]]:
    """Replay every plane under ``storage_dir``; see :func:`discover_planes`."""
    return [
        recover_plane(plane_dir, verify_data=verify_data)
        for plane_dir in discover_planes(storage_dir)
    ]


def _format_report(plane_dir: Path, recovery: SpillRecovery) -> str:
    return (
        f"{plane_dir}: {len(recovery.containers)} containers "
        f"({recovery.recovered_chunks} chunks, {recovery.recovered_bytes} bytes); "
        f"discarded {recovery.records_discarded} torn journal lines, "
        f"dropped {recovery.records_dropped} damaged spills, "
        f"removed {len(recovery.orphans_removed)} orphans"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.recovery",
        description="Replay spill manifest journals after a crash.",
    )
    parser.add_argument("storage_dir", type=Path, help="framework or backend storage directory")
    parser.add_argument(
        "--no-verify-data",
        action="store_true",
        help="skip per-spill-file checksum verification (size check only)",
    )
    options = parser.parse_args(argv)
    if not options.storage_dir.is_dir():
        print(f"error: {options.storage_dir} is not a directory", file=sys.stderr)
        return 2
    try:
        reports = recover_tree(
            options.storage_dir, verify_data=not options.no_verify_data
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not reports:
        print(f"no manifest journals found under {options.storage_dir}", file=sys.stderr)
        return 1
    for plane_dir, recovery in reports:
        print(_format_report(plane_dir, recovery))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI kill-9 job
    sys.exit(main())
