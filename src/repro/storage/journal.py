"""Append-only, checksummed manifest journal for the spill plane.

Crash consistency for :class:`~repro.storage.backends.FileContainerBackend`
rests on one file per node directory -- ``manifest.jsonl`` -- and one rule:
**data first, journal second**.  A sealed container's ``.cdata`` file is
written before its manifest record is appended, so at any kill point the
journal describes only containers whose data made it to disk; anything the
journal does not mention is discardable debris.  Replay therefore never has
to guess: it accepts the longest valid record prefix and recovery deletes
every spill file the prefix does not reference.

Each record is one JSON line carrying the container's identity, geometry,
codec, the spilled blob's length and CRC, and the full metadata section
(fingerprint, offset, length per chunk).  A ``crc`` field covers the
canonical encoding of the rest of the record, so a torn or bit-flipped line
is detected rather than replayed.  Records are append-only; recovery
truncates the file back to the valid prefix so subsequent appends start
clean.

The journaled-state-transition approach follows reconfiguration-capable
middleware practice (see PAPERS.md): every durable state change is an
idempotent, replayable record, and recovery is replay plus garbage
collection -- never in-place repair.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ValidationError

MANIFEST_NAME = "manifest.jsonl"
"""File name of the per-directory spill manifest journal."""

JOURNAL_VERSION = 1
"""Record format version stamped into every manifest record."""

_RECORD_REQUIRED_FIELDS = (
    "v",
    "container_id",
    "stream_id",
    "capacity",
    "used",
    "codec",
    "stored_length",
    "stored_crc",
    "chunks",
)


def encode_record(record: Dict[str, Any]) -> bytes:
    """Encode one manifest record as a checksummed JSON line.

    The ``crc`` field is computed over the canonical (sorted-keys, minimal
    separators) encoding of every *other* field, then embedded; decoding
    recomputes and compares.  Any prior ``crc`` in ``record`` is ignored.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = zlib.crc32(canonical.encode("ascii"))
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode("ascii")


def decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one journal line; ``None`` if torn, corrupt, or checksum-bad.

    Returning ``None`` (never raising) is deliberate: a bad line is the
    expected shape of a crash tail, and replay treats it as end-of-journal.
    """
    try:
        parsed = json.loads(line.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(parsed, dict):
        return None
    crc = parsed.pop("crc", None)
    if not isinstance(crc, int):
        return None
    canonical = json.dumps(parsed, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode("ascii")) != crc:
        return None
    for name in _RECORD_REQUIRED_FIELDS:
        if name not in parsed:
            return None
    return parsed


@dataclass
class JournalReplay:
    """What :meth:`ManifestJournal.replay` found.

    ``records`` is the longest valid prefix; ``valid_bytes`` is where that
    prefix ends in the file (the truncation point); ``discarded_lines`` counts
    line-ish segments after the prefix -- torn tails, corrupt records, and
    everything behind them (prefix consistency: a bad record invalidates all
    records after it, because append order is the only ordering guarantee).
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    discarded_lines: int = 0


class ManifestJournal:
    """The append-only checksummed journal over one ``manifest.jsonl`` file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.records_appended = 0
        """Complete records appended through this instance (partial
        fault-injected writes via :meth:`append_raw` do not count)."""

    def append(self, record: Dict[str, Any], fsync: bool = False) -> None:
        """Append one record (single ``write`` of one encoded line).

        With ``fsync`` the line is forced to stable storage before returning,
        which is what power-loss durability requires; without it the write
        still survives a process kill (page cache), which is the failure model
        the test harness exercises.
        """
        data = encode_record(record)
        self._write(data, fsync)
        self.records_appended += 1

    def append_raw(self, data: bytes, fsync: bool = False) -> None:
        """Append raw bytes -- the fault-injection hook for torn writes.

        Exists so a :class:`~repro.faults.FaultPlan` can leave exactly the
        partial line a kill mid-``write`` would leave.
        """
        if not data:
            return
        self._write(data, fsync)

    def _write(self, data: bytes, fsync: bool) -> None:
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())

    def first_record(self) -> Optional[Dict[str, Any]]:
        """Decode just the first journal line (codec sniffing for
        :meth:`FileContainerBackend.recover`), or ``None`` if absent/bad."""
        try:
            with open(self.path, "rb") as handle:
                line = handle.readline()
        except OSError:
            return None
        if not line.endswith(b"\n"):
            return None
        return decode_line(line[:-1])

    def replay(self) -> JournalReplay:
        """Read back the longest valid record prefix.

        Stops at the first line that is torn (no trailing newline), fails its
        checksum, or is not a well-formed record; everything from that point
        on is counted in ``discarded_lines`` and excluded from
        ``valid_bytes``.  Never raises for journal damage -- damage is data.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return JournalReplay()
        replay = JournalReplay()
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # Torn tail: the final write never completed its line.
                replay.discarded_lines += 1
                return replay
            record = decode_line(raw[offset:newline])
            if record is None:
                replay.discarded_lines += max(1, raw.count(b"\n", offset))
                return replay
            replay.records.append(record)
            offset = newline + 1
            replay.valid_bytes = offset
        return replay

    def rewrite(self, records: List[Dict[str, Any]], fsync: bool = False) -> None:
        """Atomically replace the journal with exactly ``records``.

        Recovery uses this when replay *dropped* valid records (data file
        missing or damaged): truncation alone would leave their lines behind,
        and every later replay would re-drop them against files recovery
        already unlinked.  The write-temp-then-rename keeps the journal
        replayable at every instant -- a kill mid-rewrite leaves either the
        old or the new journal, and both describe the same surviving spills.
        """
        temp_path = self.path.with_name(self.path.name + ".rewrite")
        with open(temp_path, "wb") as handle:
            for record in records:
                handle.write(encode_record(record))
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_path, self.path)

    def truncate(self, valid_bytes: int) -> None:
        """Cut the journal back to its valid prefix so future appends are
        clean (recovery calls this after replay)."""
        if valid_bytes < 0:
            raise ValidationError("valid_bytes must be non-negative")
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size <= valid_bytes:
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(valid_bytes)
