"""Spill-plane compression codecs for sealed container data sections.

A :class:`~repro.storage.backends.FileContainerBackend` may compress each
sealed container's data section before writing its spill file: spill bytes
shrink, and a restore pays one decompression per container which the batched
``read_chunks`` path amortises over every chunk read from that container.

Codecs are selected by registered name:

* ``"none"`` (default) -- raw spill files, read back through ``mmap`` so
  restore windows slice pages instead of copying whole ``.cdata`` files;
* ``"zlib"`` -- the stdlib fallback, always available;
* ``"zstd"`` -- the optional ``zstandard`` module (never a hard dependency;
  selecting it without the module raises
  :class:`~repro.errors.CompressionError` at configuration time);
* ``"auto"`` -- ``"zstd"`` when the module is importable, else ``"zlib"``.

One codec compresses one bounded container data section (4 MiB by default)
at a time; nothing here ever touches a whole backup stream.
"""

from __future__ import annotations

import os
import zlib
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import CompressionError

if TYPE_CHECKING:
    from repro.storage.container import PayloadSection

try:  # optional accelerator, never a hard dependency
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - exercised by the zstd-absent CI leg
    _zstandard = None

ENV_CONTAINER_COMPRESSION = "REPRO_CONTAINER_COMPRESSION"
"""Environment variable naming the default spill compression codec."""

#: Speed-biased levels: the spill plane sits on the ingest hot path, so both
#: codecs run at their fastest meaningful setting (zlib 1, zstd 3 -- the
#: zstandard default, which is already far faster than zlib).
_ZLIB_LEVEL = 1
_ZSTD_LEVEL = 3


def zstd_available() -> bool:
    """Whether the optional ``zstandard`` module is importable here."""
    return _zstandard is not None


class CompressionCodec:
    """One spill-file compression algorithm.

    ``compress`` takes a container's contiguous data section (any byte
    buffer) and returns the stored blob; ``decompress`` inverts it, with the
    expected decompressed size passed so implementations can bound their
    output buffers.  Corrupt input raises :class:`CompressionError`, never a
    codec-native exception.
    """

    name: str = "base"

    def compress(self, section: "PayloadSection") -> bytes:
        raise NotImplementedError

    def decompress(self, blob: "PayloadSection", expected_size: int) -> bytes:
        raise NotImplementedError


class NullCodec(CompressionCodec):
    """Identity codec: spill files hold the raw data section.

    The file backend never actually routes bytes through this class -- a raw
    spill file is served straight off its ``mmap`` -- but registering it keeps
    ``"none"`` a first-class codec name with the full interface.
    """

    name = "none"

    def compress(self, section: "PayloadSection") -> bytes:
        return section if type(section) is bytes else bytes(section)

    def decompress(self, blob: "PayloadSection", expected_size: int) -> bytes:
        return blob if type(blob) is bytes else bytes(blob)


class ZlibCodec(CompressionCodec):
    """Stdlib deflate at a speed-biased level (always available)."""

    name = "zlib"

    def compress(self, section: "PayloadSection") -> bytes:
        return zlib.compress(bytes(section) if type(section) is not bytes else section, _ZLIB_LEVEL)

    def decompress(self, blob: "PayloadSection", expected_size: int) -> bytes:
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise CompressionError(f"zlib spill blob is corrupt: {exc}") from exc


class ZstdCodec(CompressionCodec):
    """Optional zstandard codec (importable ``zstandard`` module required)."""

    name = "zstd"

    def __init__(self) -> None:
        if _zstandard is None:
            raise CompressionError(
                "compression codec 'zstd' requires the optional 'zstandard' "
                "module, which is not installed (use 'zlib' or 'auto')"
            )

    def compress(self, section: "PayloadSection") -> bytes:
        compressed = _zstandard.ZstdCompressor(level=_ZSTD_LEVEL).compress(
            bytes(section) if type(section) is not bytes else section
        )
        return compressed

    def decompress(self, blob: "PayloadSection", expected_size: int) -> bytes:
        try:
            return _zstandard.ZstdDecompressor().decompress(
                blob, max_output_size=expected_size
            )
        except _zstandard.ZstdError as exc:
            raise CompressionError(f"zstd spill blob is corrupt: {exc}") from exc


COMPRESSION_CODECS: Dict[str, Callable[[], CompressionCodec]] = {
    NullCodec.name: NullCodec,
    ZlibCodec.name: ZlibCodec,
    ZstdCodec.name: ZstdCodec,
}
"""Registry of compression codec constructors by name (``"auto"`` resolves
through :func:`resolve_compression` before reaching this registry)."""


def resolve_compression(name: Optional[str]) -> str:
    """Resolve a compression knob value to a concrete registered codec name.

    ``None`` defers to the :data:`ENV_CONTAINER_COMPRESSION` environment
    variable, falling back to ``"none"``; ``"auto"`` picks ``"zstd"`` when the
    module is importable and ``"zlib"`` otherwise.  The result is always a
    key of :data:`COMPRESSION_CODECS` (or a :class:`CompressionError`).
    """
    if name is None:
        name = os.environ.get(ENV_CONTAINER_COMPRESSION) or "none"
    if name == "auto":
        return "zstd" if zstd_available() else "zlib"
    if name not in COMPRESSION_CODECS:
        raise CompressionError(
            f"unknown compression codec {name!r}; expected one of "
            f"{sorted(COMPRESSION_CODECS) + ['auto']}"
        )
    return name


def build_codec(name: Optional[str]) -> Optional[CompressionCodec]:
    """Instantiate the codec for a compression knob value.

    Returns ``None`` for ``"none"``: the file backend treats "no codec" as
    the signal to serve raw spill files straight off their ``mmap``.
    """
    resolved = resolve_compression(name)
    if resolved == NullCodec.name:
        return None
    return COMPRESSION_CODECS[resolved]()
