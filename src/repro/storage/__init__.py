"""Storage substrate of a deduplication server node.

Implements the data structures of Figure 3 of the paper:

* :class:`~repro.storage.container.Container` -- the self-describing on-disk
  unit that preserves locality: a data section of chunks plus a metadata
  section of their fingerprints/offsets/lengths.
* :class:`~repro.storage.container_store.ContainerStore` -- parallel container
  management (allocate / open-per-stream / seal / read), with disk-I/O
  accounting performed at container granularity.
* :class:`~repro.storage.similarity_index.SimilarityIndex` -- the in-RAM
  hash table mapping representative fingerprints (RFP) to container IDs (CID),
  with striped bucket locking for concurrent lookups.
* :class:`~repro.storage.fingerprint_cache.ChunkFingerprintCache` -- the LRU
  cache of per-container fingerprint sets, prefetched a container at a time.
* :class:`~repro.storage.chunk_index.DiskChunkIndex` -- the traditional
  full on-disk chunk index consulted only when the cache misses.
* :mod:`~repro.storage.backends` -- pluggable backends deciding where sealed
  containers' data sections live: resident in RAM (default) or spilled to
  disk files with only metadata kept resident.
* :mod:`~repro.storage.compression` -- spill-plane codecs (``none``/``zlib``/
  optional ``zstd``) the file backend compresses sealed data sections with.
"""

from repro.storage.backends import (
    CONTAINER_BACKENDS,
    ContainerBackend,
    FileContainerBackend,
    InMemoryBackend,
    build_container_backend,
)
from repro.storage.compression import (
    COMPRESSION_CODECS,
    CompressionCodec,
    build_codec,
    resolve_compression,
    zstd_available,
)
from repro.storage.container import Container, ContainerMetadataEntry
from repro.storage.container_store import ContainerStore
from repro.storage.chunk_index import DiskChunkIndex
from repro.storage.fingerprint_cache import ChunkFingerprintCache
from repro.storage.similarity_index import SimilarityIndex

__all__ = [
    "COMPRESSION_CODECS",
    "CONTAINER_BACKENDS",
    "CompressionCodec",
    "Container",
    "ContainerBackend",
    "ContainerMetadataEntry",
    "ContainerStore",
    "DiskChunkIndex",
    "ChunkFingerprintCache",
    "FileContainerBackend",
    "InMemoryBackend",
    "SimilarityIndex",
    "build_codec",
    "build_container_backend",
    "resolve_compression",
    "zstd_available",
]
