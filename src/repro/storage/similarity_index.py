"""The similarity index: representative fingerprint -> container id.

"Similarity index is a hash-table based memory data structure, with each of
its entry containing a mapping between a representative fingerprint (RFP) in a
super-chunk handprint and the container ID (CID) where it is stored.  To
support concurrent lookup operations in similarity index by multiple data
streams on multicore deduplication nodes, we adopt a parallel similarity index
lookup design and control the synchronization scheme by allocating a lock per
hash bucket or for a constant number of consecutive hash buckets."
(paper Section 3.3)

The index answers two questions:

* routing pre-query: *how many* representative fingerprints of an incoming
  super-chunk's handprint are already known here (its resemblance count,
  Algorithm 1 step 2), and
* dedup lookup: *which containers* hold the matched representative
  fingerprints, so their fingerprints can be prefetched into the chunk
  fingerprint cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fingerprint.handprint import Handprint
from repro.utils.striped_lock import StripedLock
from repro.errors import ValidationError

DEFAULT_ENTRY_SIZE_BYTES = 40
"""Per-entry RAM footprint assumed by the paper's RAM-usage estimate."""


class SimilarityIndex:
    """In-memory RFP -> CID mapping with striped-lock concurrency control.

    Parameters
    ----------
    num_locks:
        Number of lock stripes protecting the hash buckets (Figure 4(b) studies
        how this number affects parallel lookup throughput).
    entry_size_bytes:
        Assumed RAM footprint per entry, for the RAM-usage accounting.
    """

    def __init__(self, num_locks: int = 1024, entry_size_bytes: int = DEFAULT_ENTRY_SIZE_BYTES):
        self._entries: Dict[bytes, int] = {}  # guarded-by: _locks
        self._locks = StripedLock(num_locks)
        self.entry_size_bytes = entry_size_bytes
        # Approximate counters: each bump happens under some stripe lock, so
        # they are never torn mid-update, but bumps from different stripes may
        # still lose increments against each other.  They feed reports, not
        # control flow.
        self.lookups = 0  # guarded-by: _locks
        self.lookup_hits = 0  # guarded-by: _locks
        self.inserts = 0  # guarded-by: _locks

    def __len__(self) -> int:
        return len(self._entries)  # unguarded-ok: aggregate snapshot read for reporting

    def __contains__(self, representative_fingerprint: bytes) -> bool:
        return representative_fingerprint in self._entries  # unguarded-ok: stats-free membership probe, tolerates racing inserts

    @property
    def num_locks(self) -> int:
        return self._locks.num_stripes

    # ------------------------------------------------------------------ #
    # single-entry operations
    # ------------------------------------------------------------------ #

    def lookup(self, representative_fingerprint: bytes) -> Optional[int]:
        """Return the container id stored for an RFP, or ``None``."""
        with self._locks.lock_for(representative_fingerprint):
            self._locks.acquisitions += 1
            self.lookups += 1
            container_id = self._entries.get(representative_fingerprint)
            if container_id is not None:
                self.lookup_hits += 1
            return container_id

    def insert(self, representative_fingerprint: bytes, container_id: int) -> None:
        """Insert or update the container id for an RFP."""
        with self._locks.lock_for(representative_fingerprint):
            self._locks.acquisitions += 1
            self.inserts += 1
            self._entries[representative_fingerprint] = container_id

    def insert_many(self, items: Iterable[Tuple[bytes, int]]) -> None:
        """Batched insert of ``(RFP, container id)`` pairs.

        Each entry still takes its own stripe lock (entries hash to different
        stripes), with counters advancing exactly as per-entry inserts would.
        """
        locks = self._locks
        entries = self._entries
        for representative_fingerprint, container_id in items:
            with locks.lock_for(representative_fingerprint):
                locks.acquisitions += 1
                self.inserts += 1
                entries[representative_fingerprint] = container_id

    # ------------------------------------------------------------------ #
    # handprint-level operations
    # ------------------------------------------------------------------ #

    def resemblance_count(self, handprint: Handprint) -> int:
        """Number of the handprint's RFPs already present in this index.

        This is the count ``r_i`` each candidate node returns during the
        pre-routing query of Algorithm 1 (step 2).
        """
        count = 0
        locks = self._locks
        entries = self._entries
        for fingerprint in handprint:
            with locks.lock_for(fingerprint):
                locks.acquisitions += 1
                self.lookups += 1
                if fingerprint in entries:
                    self.lookup_hits += 1
                    count += 1
        return count

    def lookup_handprint(self, handprint: Handprint) -> List[int]:
        """Container ids of every matched RFP of ``handprint`` (deduplicated, ordered)."""
        container_ids: List[int] = []
        seen = set()
        for fingerprint in handprint:
            container_id = self.lookup(fingerprint)
            if container_id is not None and container_id not in seen:
                seen.add(container_id)
                container_ids.append(container_id)
        return container_ids

    def insert_handprint(self, handprint: Handprint, container_id: int) -> None:
        """Record every RFP of a newly stored super-chunk as residing in ``container_id``."""
        for fingerprint in handprint:
            self.insert(fingerprint, container_id)

    def insert_handprint_containers(
        self, handprint: Handprint, container_ids: Sequence[int]
    ) -> None:
        """Record each RFP with its own container id (parallel sequences)."""
        if len(container_ids) != len(handprint.representative_fingerprints):
            raise ValidationError("container_ids must align with the handprint fingerprints")
        for fingerprint, container_id in zip(handprint, container_ids):
            self.insert(fingerprint, container_id)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def size_in_bytes(self) -> int:
        """Estimated RAM footprint of the index."""
        return len(self._entries) * self.entry_size_bytes  # unguarded-ok: aggregate snapshot read for reporting

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:  # unguarded-ok: approximate-counter snapshot for reporting
            return 0.0
        return self.lookup_hits / self.lookups  # unguarded-ok: approximate-counter snapshot for reporting

    def fingerprints(self) -> Iterable[bytes]:
        """Iterate the representative fingerprints currently indexed.

        A quiesced-index API: callers iterate between backup sessions, not
        while inserts are in flight.
        """
        return iter(self._entries.keys())  # unguarded-ok: quiesced-index iteration between sessions
