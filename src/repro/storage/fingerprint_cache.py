"""Chunk fingerprint cache with container-granularity prefetching.

"The chunk fingerprint cache ... keeps the chunk fingerprints of recently
accessed containers in RAM.  Once a representative fingerprint is matched by a
lookup request in the similarity index, all the chunk fingerprints belonging
to the mapped container are prefetched into the chunk fingerprint cache ...
A reasonable cache replacement policy is Least-Recently-Used (LRU) on cached
chunk fingerprints." (paper Section 3.3)

The cache is keyed by container id; each entry is the set of fingerprints of
that container together with the container id, so a hit both confirms a chunk
is a duplicate and tells the node which container already stores it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.lru import LRUCache

DEFAULT_CACHE_CAPACITY_CONTAINERS = 1024
"""Default capacity expressed in number of cached containers."""


class ChunkFingerprintCache:
    """LRU cache of per-container fingerprint sets.

    Parameters
    ----------
    capacity_containers:
        Number of containers whose fingerprints can be cached simultaneously.
    """

    def __init__(self, capacity_containers: int = DEFAULT_CACHE_CAPACITY_CONTAINERS):
        self._containers: LRUCache[int, Set[bytes]] = LRUCache(capacity_containers)
        # Reverse map fingerprint -> container id for O(1) duplicate checks.
        self._fingerprint_to_container: Dict[bytes, int] = {}
        self._containers._on_evict = self._handle_eviction
        self.prefetches = 0

    def _handle_eviction(self, container_id: int, fingerprints: Set[bytes]) -> None:
        for fingerprint in fingerprints:
            if self._fingerprint_to_container.get(fingerprint) == container_id:
                del self._fingerprint_to_container[fingerprint]

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def prefetch_container(self, container_id: int, fingerprints: Iterable[bytes]) -> None:
        """Load all fingerprints of ``container_id`` into the cache."""
        fingerprint_set = set(fingerprints)
        self._containers.put(container_id, fingerprint_set)
        for fingerprint in fingerprint_set:
            self._fingerprint_to_container[fingerprint] = container_id
        self.prefetches += 1

    def add_fingerprint(self, container_id: int, fingerprint: bytes) -> None:
        """Add a single fingerprint of a currently-open container to the cache."""
        existing = self._containers.peek(container_id)
        if existing is None:
            existing = set()
            self._containers.put(container_id, existing)
        existing.add(fingerprint)
        self._fingerprint_to_container[fingerprint] = container_id

    def add_fingerprints(self, container_id: int, fingerprints: Sequence[bytes]) -> None:
        """Add a batch of fingerprints of one open container in bulk.

        Equivalent to calling :meth:`add_fingerprint` once per fingerprint:
        the container entry is created (inserted at most-recently-used, with
        the same eviction consequences) only if absent.
        """
        if not fingerprints:
            return
        existing = self._containers.peek(container_id)
        if existing is None:
            existing = set()
            self._containers.put(container_id, existing)
        existing.update(fingerprints)
        self._fingerprint_to_container.update(dict.fromkeys(fingerprints, container_id))

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def lookup(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id caching ``fingerprint`` (and refresh its recency)."""
        container_id = self._fingerprint_to_container.get(fingerprint)
        if container_id is None:
            # Count the miss on the LRU statistics without touching entries.
            self._containers.misses += 1
            return None
        # Touch the container entry to refresh LRU order and record the hit.
        if self._containers.get(container_id) is None:
            # The reverse map was stale (entry evicted); treat as a miss.
            del self._fingerprint_to_container[fingerprint]
            return None
        return container_id

    def lookup_many(self, fingerprints: Sequence[bytes]) -> Dict[bytes, int]:
        """Batched lookup of distinct fingerprints against a stable cache state.

        Returns ``fingerprint -> container id`` for every hit.  The hit/miss
        statistics, stale-entry dropping and final LRU recency order are
        exactly what ``len(fingerprints)`` sequential :meth:`lookup` calls
        would have produced -- provided no prefetch or insert runs in between
        (callers interleaving mutations, like the batched node data plane,
        use :meth:`probe_batch` + :meth:`commit_lookups` instead).
        """
        found, stale = self.probe_batch(fingerprints)
        reverse = self._fingerprint_to_container
        for fingerprint in stale:
            del reverse[fingerprint]
        self.touch_many(found.values())
        self._containers.record(len(found), len(fingerprints) - len(found))
        return found

    def probe_batch(
        self, fingerprints: Iterable[bytes]
    ) -> Tuple[Dict[bytes, int], List[bytes]]:
        """Counter-free snapshot classification of a batch of fingerprints.

        Returns ``(found, stale)``: ``found`` maps each cached fingerprint to
        its container id (insertion-ordered as ``fingerprints``), ``stale``
        lists fingerprints whose reverse-map entry points at an evicted
        container.  Neither statistics nor LRU order are touched; the caller
        replays those effects with :meth:`touch_many`, :meth:`drop_stale` and
        :meth:`commit_lookups` at the points its execution order dictates.
        """
        reverse = self._fingerprint_to_container
        if not reverse:
            return {}, []
        found = {
            fingerprint: reverse[fingerprint]
            for fingerprint in fingerprints
            if fingerprint in reverse
        }
        if not found:
            return {}, []
        entries = self._containers
        # Validate per distinct container, not per fingerprint: stale entries
        # are the rare case, hits usually share a handful of containers.
        invalid = {
            container_id
            for container_id in set(found.values())
            if container_id not in entries
        }
        if not invalid:
            return found, []
        stale = [fp for fp, container_id in found.items() if container_id in invalid]
        for fingerprint in stale:
            del found[fingerprint]
        return found, stale

    def peek_many(self, fingerprints: Iterable[bytes]) -> Set[bytes]:
        """The subset of ``fingerprints`` currently cached, without side effects
        on statistics or LRU order (stale reverse entries are dropped quietly,
        as :meth:`peek` does)."""
        reverse = self._fingerprint_to_container
        candidates = reverse.keys() & (
            fingerprints if isinstance(fingerprints, (set, frozenset)) else set(fingerprints)
        )
        found: Set[bytes] = set()
        for fingerprint in candidates:
            if self._containers.peek(reverse[fingerprint]) is None:
                del reverse[fingerprint]
            else:
                found.add(fingerprint)
        return found

    def touch_many(self, container_ids: Iterable[int]) -> None:
        """Replay a run of hit-recency touches in order (no statistics).

        Only the *last* touch of each container determines the final LRU
        order, so repeated touches are collapsed to one per container,
        preserving last-occurrence order -- a run of hits within one
        prefetched container costs a single reorder.
        """
        ids = container_ids if isinstance(container_ids, list) else list(container_ids)
        if len(ids) > 1:
            ids = reversed(dict.fromkeys(reversed(ids)))
        touch = self._containers.touch
        for container_id in ids:
            touch(container_id)

    def drop_stale(self, fingerprint: bytes) -> None:
        """Drop a reverse-map entry found stale by :meth:`probe_batch`."""
        self._fingerprint_to_container.pop(fingerprint, None)

    def commit_lookups(self, hits: int, misses: int) -> None:
        """Account a batch of lookups in bulk on the LRU statistics."""
        self._containers.record(hits, misses)

    def peek(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id caching ``fingerprint`` without side effects.

        Unlike :meth:`lookup`, neither the hit/miss statistics nor the LRU
        recency order are touched, so read-only probes (routing samples,
        restores) do not skew ``cache_hit_ratio`` or eviction order.
        """
        container_id = self._fingerprint_to_container.get(fingerprint)
        if container_id is None:
            return None
        if self._containers.peek(container_id) is None:
            # The reverse map was stale (entry evicted); drop it quietly.
            del self._fingerprint_to_container[fingerprint]
            return None
        return container_id

    def is_container_cached(self, container_id: int) -> bool:
        return self._containers.peek(container_id) is not None

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        return self._containers.hits

    @property
    def misses(self) -> int:
        return self._containers.misses

    @property
    def hit_ratio(self) -> float:
        return self._containers.hit_ratio

    @property
    def cached_containers(self) -> int:
        return len(self._containers)

    @property
    def cached_fingerprints(self) -> int:
        return len(self._fingerprint_to_container)
