"""Chunk fingerprint cache with container-granularity prefetching.

"The chunk fingerprint cache ... keeps the chunk fingerprints of recently
accessed containers in RAM.  Once a representative fingerprint is matched by a
lookup request in the similarity index, all the chunk fingerprints belonging
to the mapped container are prefetched into the chunk fingerprint cache ...
A reasonable cache replacement policy is Least-Recently-Used (LRU) on cached
chunk fingerprints." (paper Section 3.3)

The cache is keyed by container id; each entry is the set of fingerprints of
that container together with the container id, so a hit both confirms a chunk
is a duplicate and tells the node which container already stores it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.utils.lru import LRUCache

DEFAULT_CACHE_CAPACITY_CONTAINERS = 1024
"""Default capacity expressed in number of cached containers."""


class ChunkFingerprintCache:
    """LRU cache of per-container fingerprint sets.

    Parameters
    ----------
    capacity_containers:
        Number of containers whose fingerprints can be cached simultaneously.
    """

    def __init__(self, capacity_containers: int = DEFAULT_CACHE_CAPACITY_CONTAINERS):
        self._containers: LRUCache[int, Set[bytes]] = LRUCache(capacity_containers)
        # Reverse map fingerprint -> container id for O(1) duplicate checks.
        self._fingerprint_to_container: Dict[bytes, int] = {}
        self._containers._on_evict = self._handle_eviction
        self.prefetches = 0

    def _handle_eviction(self, container_id: int, fingerprints: Set[bytes]) -> None:
        for fingerprint in fingerprints:
            if self._fingerprint_to_container.get(fingerprint) == container_id:
                del self._fingerprint_to_container[fingerprint]

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def prefetch_container(self, container_id: int, fingerprints: Iterable[bytes]) -> None:
        """Load all fingerprints of ``container_id`` into the cache."""
        fingerprint_set = set(fingerprints)
        self._containers.put(container_id, fingerprint_set)
        for fingerprint in fingerprint_set:
            self._fingerprint_to_container[fingerprint] = container_id
        self.prefetches += 1

    def add_fingerprint(self, container_id: int, fingerprint: bytes) -> None:
        """Add a single fingerprint of a currently-open container to the cache."""
        existing = self._containers.peek(container_id)
        if existing is None:
            existing = set()
            self._containers.put(container_id, existing)
        existing.add(fingerprint)
        self._fingerprint_to_container[fingerprint] = container_id

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def lookup(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id caching ``fingerprint`` (and refresh its recency)."""
        container_id = self._fingerprint_to_container.get(fingerprint)
        if container_id is None:
            # Count the miss on the LRU statistics without touching entries.
            self._containers.misses += 1
            return None
        # Touch the container entry to refresh LRU order and record the hit.
        if self._containers.get(container_id) is None:
            # The reverse map was stale (entry evicted); treat as a miss.
            del self._fingerprint_to_container[fingerprint]
            return None
        return container_id

    def peek(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id caching ``fingerprint`` without side effects.

        Unlike :meth:`lookup`, neither the hit/miss statistics nor the LRU
        recency order are touched, so read-only probes (routing samples,
        restores) do not skew ``cache_hit_ratio`` or eviction order.
        """
        container_id = self._fingerprint_to_container.get(fingerprint)
        if container_id is None:
            return None
        if self._containers.peek(container_id) is None:
            # The reverse map was stale (entry evicted); drop it quietly.
            del self._fingerprint_to_container[fingerprint]
            return None
        return container_id

    def is_container_cached(self, container_id: int) -> bool:
        return self._containers.peek(container_id) is not None

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        return self._containers.hits

    @property
    def misses(self) -> int:
        return self._containers.misses

    @property
    def hit_ratio(self) -> float:
        return self._containers.hit_ratio

    @property
    def cached_containers(self) -> int:
        return len(self._containers)

    @property
    def cached_fingerprints(self) -> int:
        return len(self._fingerprint_to_container)
