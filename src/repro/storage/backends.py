"""Pluggable container storage backends.

The :class:`~repro.storage.container_store.ContainerStore` decides *when* a
container seals; a :class:`ContainerBackend` decides *where* the sealed data
section lives:

* :class:`InMemoryBackend` (default) keeps every payload resident, matching
  the paper's RAM-file-system evaluation setup.
* :class:`FileContainerBackend` writes each sealed container's data section to
  a file under ``storage_dir`` and evicts the payload from RAM.  Metadata
  (fingerprints, offsets, lengths) stays resident, so fingerprint prefetching
  still costs no payload I/O, while reads reload the spill file -- counted as
  container I/O by the store, exactly like every other container read.  With
  this backend the node's total footprint is bounded by the open containers
  plus indexes, not by the stored data.

The file backend optionally compresses each spilled data section (see
:mod:`repro.storage.compression`): raw spill files are read back through
``mmap`` so restore windows slice pages instead of copying whole ``.cdata``
files, and compressed ones are decompressed once per container -- a cost the
batched ``read_chunks`` restore path amortises over every chunk in the batch.

Backends are selected by registered name through
:func:`build_container_backend`, via ``NodeConfig.container_backend`` /
``SigmaDedupe(container_backend=..., storage_dir=...)`` or the
``REPRO_CONTAINER_BACKEND`` environment variable (used by the CI leg that runs
the whole test suite on the spill-to-disk backend); compression is the
``compression=`` knob on the same paths, or ``REPRO_CONTAINER_COMPRESSION``.
"""

from __future__ import annotations

import mmap
import tempfile
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.errors import CompressionError, ContainerNotFoundError, StorageError
from repro.storage.compression import build_codec, resolve_compression
from repro.storage.container import Container, PayloadSection

ENV_CONTAINER_BACKEND = "REPRO_CONTAINER_BACKEND"
"""Environment variable naming the default container backend for nodes."""

DEFAULT_DECOMPRESSED_CACHE_BYTES = 32 * 1024 * 1024
"""Default budget for the compressed file backend's decompressed-section LRU
(8 default-capacity containers).  Raw spill files need no such cache -- their
``mmap`` pages live in the kernel page cache -- but a compressed section costs
a real decompression to rebuild, and fragmented restores revisit the same
container across many read windows."""


class ContainerBackend(ABC):
    """Where sealed containers' data sections live."""

    name: str = "base"

    @abstractmethod
    def on_seal(self, container: Container) -> None:
        """Called by the store right after ``container`` seals (one container
        write has already been accounted); may persist and evict the payload."""

    def close(self) -> None:
        """Release backend resources (temporary directories, open files)."""


class InMemoryBackend(ContainerBackend):
    """Keep every container payload resident in RAM (the seed behavior).

    ``storage_dir`` and ``compression`` are accepted (and ignored) so every
    registered backend shares one construction signature and callers can
    thread the knobs unconditionally.
    """

    name = "memory"

    def __init__(
        self,
        storage_dir: "str | Path | None" = None,
        compression: Optional[str] = None,
    ):
        pass

    def on_seal(self, container: Container) -> None:
        pass


class FileContainerBackend(ContainerBackend):
    """Spill sealed containers' data sections to files and evict them from RAM.

    Parameters
    ----------
    storage_dir:
        Directory receiving one ``container-<id>.cdata`` file per sealed
        container.  When omitted, a private temporary directory is created and
        removed when the backend is garbage-collected or closed.
    compression:
        Registered codec name (``"none"``, ``"zlib"``, ``"zstd"``, ``"auto"``)
        applied to every spilled data section.  ``None`` defers to the
        ``REPRO_CONTAINER_COMPRESSION`` environment variable, falling back to
        ``"none"`` -- raw spill files, read back as ``mmap`` page slices.
    decompressed_cache_bytes:
        Budget for the decompressed-section LRU used when a codec is active:
        a container is decompressed once and its section cached, so a
        fragmented restore that revisits the container across many read
        windows pays the codec once, not once per window.
    """

    name = "file"

    def __init__(
        self,
        storage_dir: "str | Path | None" = None,
        compression: Optional[str] = None,
        decompressed_cache_bytes: int = DEFAULT_DECOMPRESSED_CACHE_BYTES,
    ):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if storage_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-containers-")
            storage_dir = self._tmpdir.name
        self.storage_dir = Path(storage_dir)
        self.storage_dir.mkdir(parents=True, exist_ok=True)
        self.compression = resolve_compression(compression)
        self._codec = build_codec(self.compression)
        self.spilled_containers = 0
        self.spilled_bytes = 0
        """Raw data-section bytes handed to the backend at seal time."""
        self.spilled_bytes_stored = 0
        """Bytes actually written to spill files (== ``spilled_bytes`` when
        ``compression == "none"``, smaller when a codec is active) -- the
        ``spill_bytes_stored`` metric the ingest bench records."""
        self.spill_loads = 0
        """Spill files actually read back from disk (one-slot buffer hits do
        not count) -- the metric the batched restore path minimises."""
        # One-slot read buffer: consecutive chunk reads from the same sealed
        # container (the common restore pattern) reload its file only once
        # while keeping resident payload bounded to a single container.
        self._last_loaded: Optional[Tuple[int, PayloadSection]] = None
        # Decompressed-section LRU (compressed spills only): byte-bounded so
        # resident decompressed payload never exceeds the configured budget.
        self._decompressed: "OrderedDict[int, bytes]" = OrderedDict()
        self._decompressed_bytes = 0
        self._decompressed_capacity = decompressed_cache_bytes

    def spill_path(self, container_id: int) -> Path:
        """The spill file holding ``container_id``'s data section."""
        return self.storage_dir / f"container-{container_id:08d}.cdata"

    def on_seal(self, container: Container) -> None:
        section = container.payload_bytes()
        blob = section if self._codec is None else self._codec.compress(section)
        self.spill_path(container.container_id).write_bytes(blob)
        self.spilled_containers += 1
        self.spilled_bytes += len(section)
        self.spilled_bytes_stored += len(blob)
        container.evict_payload(self._load)

    def _map_spill_file(self, container: Container) -> PayloadSection:
        """``mmap`` the spill file (``bytes`` only for the empty-file case)."""
        path = self.spill_path(container.container_id)
        try:
            with open(path, "rb") as handle:
                try:
                    return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError:
                    # A zero-length file cannot be mapped; an empty section is
                    # still a valid (degenerate) spill.
                    return handle.read()
        except OSError as exc:
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is missing "
                f"or unreadable: {path}"
            ) from exc

    def _load(self, container: Container) -> PayloadSection:
        cached = self._last_loaded
        if cached is not None and cached[0] == container.container_id:
            return cached[1]
        if self._codec is not None:
            remembered = self._decompressed.get(container.container_id)
            if remembered is not None:
                # Decompressed-LRU hit: the codec already ran for this
                # container; neither a spill load nor a decompression happens.
                self._decompressed.move_to_end(container.container_id)
                self._last_loaded = (container.container_id, remembered)
                return remembered
        stored = self._map_spill_file(container)
        payload: PayloadSection
        if self._codec is None:
            # Raw spill: serve the map itself; chunk reads slice windows out
            # of it (mmap slices return bytes), never copying the whole file.
            payload = stored
        else:
            try:
                section = self._codec.decompress(stored, container.used)
            except CompressionError as exc:
                raise ContainerNotFoundError(
                    f"spill file for container {container.container_id} cannot "
                    f"be decompressed ({self.compression}): "
                    f"{self.spill_path(container.container_id)}"
                ) from exc
            finally:
                if isinstance(stored, mmap.mmap):
                    stored.close()
            self._remember_decompressed(container.container_id, section)
            payload = section
        if len(payload) != container.used:
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is truncated: "
                f"expected {container.used} bytes, found {len(payload)} "
                f"({self.spill_path(container.container_id)})"
            )
        self.spill_loads += 1
        self._last_loaded = (container.container_id, payload)
        return payload

    def _remember_decompressed(self, container_id: int, section: bytes) -> None:
        """LRU-cache a decompressed data section within the byte budget."""
        if len(section) > self._decompressed_capacity:
            return
        previous = self._decompressed.pop(container_id, None)
        if previous is not None:
            self._decompressed_bytes -= len(previous)
        self._decompressed[container_id] = section
        self._decompressed_bytes += len(section)
        while self._decompressed_bytes > self._decompressed_capacity:
            _, evicted = self._decompressed.popitem(last=False)
            self._decompressed_bytes -= len(evicted)

    def close(self) -> None:
        cached = self._last_loaded
        self._last_loaded = None
        self._decompressed.clear()
        self._decompressed_bytes = 0
        if cached is not None and isinstance(cached[1], mmap.mmap):
            cached[1].close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


CONTAINER_BACKENDS: Dict[str, Callable[..., ContainerBackend]] = {
    InMemoryBackend.name: InMemoryBackend,
    FileContainerBackend.name: FileContainerBackend,
}
"""Registry of container backend constructors by name."""


def build_container_backend(
    name: str,
    storage_dir: "str | Path | None" = None,
    compression: Optional[str] = None,
) -> ContainerBackend:
    """Instantiate a registered container backend by name.

    Every registered factory is called as ``factory(storage_dir=...,
    compression=...)``; backends that need no directory or codec (the
    in-memory one, or third-party registrations) simply ignore them.
    """
    try:
        factory = CONTAINER_BACKENDS[name]
    except KeyError:
        raise StorageError(
            f"unknown container backend {name!r}; expected one of "
            f"{sorted(CONTAINER_BACKENDS)}"
        ) from None
    return factory(storage_dir=storage_dir, compression=compression)
