"""Pluggable container storage backends.

The :class:`~repro.storage.container_store.ContainerStore` decides *when* a
container seals; a :class:`ContainerBackend` decides *where* the sealed data
section lives:

* :class:`InMemoryBackend` (default) keeps every payload resident, matching
  the paper's RAM-file-system evaluation setup.
* :class:`FileContainerBackend` writes each sealed container's data section to
  a file under ``storage_dir`` and evicts the payload from RAM.  Metadata
  (fingerprints, offsets, lengths) stays resident, so fingerprint prefetching
  still costs no payload I/O, while reads reload the spill file -- counted as
  container I/O by the store, exactly like every other container read.  With
  this backend the node's total footprint is bounded by the open containers
  plus indexes, not by the stored data.

Backends are selected by registered name through
:func:`build_container_backend`, via ``NodeConfig.container_backend`` /
``SigmaDedupe(container_backend=..., storage_dir=...)`` or the
``REPRO_CONTAINER_BACKEND`` environment variable (used by the CI leg that runs
the whole test suite on the spill-to-disk backend).
"""

from __future__ import annotations

import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.errors import ContainerNotFoundError, StorageError
from repro.storage.container import Container

ENV_CONTAINER_BACKEND = "REPRO_CONTAINER_BACKEND"
"""Environment variable naming the default container backend for nodes."""


class ContainerBackend(ABC):
    """Where sealed containers' data sections live."""

    name: str = "base"

    @abstractmethod
    def on_seal(self, container: Container) -> None:
        """Called by the store right after ``container`` seals (one container
        write has already been accounted); may persist and evict the payload."""

    def close(self) -> None:
        """Release backend resources (temporary directories, open files)."""


class InMemoryBackend(ContainerBackend):
    """Keep every container payload resident in RAM (the seed behavior).

    ``storage_dir`` is accepted (and ignored) so every registered backend
    shares one construction signature and callers can thread the knob
    unconditionally.
    """

    name = "memory"

    def __init__(self, storage_dir: "str | Path | None" = None):
        pass

    def on_seal(self, container: Container) -> None:
        pass


class FileContainerBackend(ContainerBackend):
    """Spill sealed containers' data sections to files and evict them from RAM.

    Parameters
    ----------
    storage_dir:
        Directory receiving one ``container-<id>.cdata`` file per sealed
        container.  When omitted, a private temporary directory is created and
        removed when the backend is garbage-collected or closed.
    """

    name = "file"

    def __init__(self, storage_dir: "str | Path | None" = None):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if storage_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-containers-")
            storage_dir = self._tmpdir.name
        self.storage_dir = Path(storage_dir)
        self.storage_dir.mkdir(parents=True, exist_ok=True)
        self.spilled_containers = 0
        self.spilled_bytes = 0
        self.spill_loads = 0
        """Spill files actually read back from disk (one-slot buffer hits do
        not count) -- the metric the batched restore path minimises."""
        # One-slot read buffer: consecutive chunk reads from the same sealed
        # container (the common restore pattern) reload its file only once
        # while keeping resident payload bounded to a single container.
        self._last_loaded: "tuple[int, bytes] | None" = None

    def spill_path(self, container_id: int) -> Path:
        """The spill file holding ``container_id``'s data section."""
        return self.storage_dir / f"container-{container_id:08d}.cdata"

    def on_seal(self, container: Container) -> None:
        payload = container.payload_bytes()
        self.spill_path(container.container_id).write_bytes(payload)
        self.spilled_containers += 1
        self.spilled_bytes += len(payload)
        container.evict_payload(self._load)

    def _load(self, container: Container) -> bytes:
        cached = self._last_loaded
        if cached is not None and cached[0] == container.container_id:
            return cached[1]
        path = self.spill_path(container.container_id)
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is missing "
                f"or unreadable: {path}"
            ) from exc
        if len(payload) != container.used:
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is truncated: "
                f"expected {container.used} bytes, found {len(payload)} ({path})"
            )
        self.spill_loads += 1
        self._last_loaded = (container.container_id, payload)
        return payload

    def close(self) -> None:
        self._last_loaded = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


CONTAINER_BACKENDS: Dict[str, Callable[..., ContainerBackend]] = {
    InMemoryBackend.name: InMemoryBackend,
    FileContainerBackend.name: FileContainerBackend,
}
"""Registry of container backend constructors by name."""


def build_container_backend(
    name: str, storage_dir: "str | Path | None" = None
) -> ContainerBackend:
    """Instantiate a registered container backend by name.

    Every registered factory is called as ``factory(storage_dir=...)``;
    backends that need no directory (the in-memory one, or third-party
    registrations) simply ignore it.
    """
    try:
        factory = CONTAINER_BACKENDS[name]
    except KeyError:
        raise StorageError(
            f"unknown container backend {name!r}; expected one of "
            f"{sorted(CONTAINER_BACKENDS)}"
        ) from None
    return factory(storage_dir=storage_dir)
