"""Pluggable container storage backends.

The :class:`~repro.storage.container_store.ContainerStore` decides *when* a
container seals; a :class:`ContainerBackend` decides *where* the sealed data
section lives:

* :class:`InMemoryBackend` (default) keeps every payload resident, matching
  the paper's RAM-file-system evaluation setup.
* :class:`FileContainerBackend` writes each sealed container's data section to
  a file under ``storage_dir`` and evicts the payload from RAM.  Metadata
  (fingerprints, offsets, lengths) stays resident, so fingerprint prefetching
  still costs no payload I/O, while reads reload the spill file -- counted as
  container I/O by the store, exactly like every other container read.  With
  this backend the node's total footprint is bounded by the open containers
  plus indexes, not by the stored data.

The file backend optionally compresses each spilled data section (see
:mod:`repro.storage.compression`): raw spill files are read back through
``mmap`` so restore windows slice pages instead of copying whole ``.cdata``
files, and compressed ones are decompressed once per container -- a cost the
batched ``read_chunks`` restore path amortises over every chunk in the batch.

The file backend is also **crash consistent**: every seal appends a
checksummed record to a per-directory ``manifest.jsonl`` journal (see
:mod:`repro.storage.journal`), written strictly *after* the ``.cdata`` file,
so :meth:`FileContainerBackend.recover` can reopen a directory after a hard
kill -- replaying the journal's valid prefix, discarding torn trailing
records, and deleting orphaned or truncated spill files.

Backends are selected by registered name through
:func:`build_container_backend`, via ``NodeConfig.container_backend`` /
``SigmaDedupe(container_backend=..., storage_dir=...)`` or the
``REPRO_CONTAINER_BACKEND`` environment variable (used by the CI leg that runs
the whole test suite on the spill-to-disk backend); compression is the
``compression=`` knob on the same paths, or ``REPRO_CONTAINER_COMPRESSION``.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import zlib
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, Type

from repro.analysis.runtime import GuardLock, guarded_lock
from repro.errors import (
    CompressionError,
    ContainerNotFoundError,
    RecoveryError,
    SimulatedCrashError,
    StorageError,
)
from repro.storage.compression import build_codec, resolve_compression
from repro.storage.container import Container, ContainerMetadataEntry, PayloadSection
from repro.storage.journal import (
    JOURNAL_VERSION,
    MANIFEST_NAME,
    ManifestJournal,
    encode_record,
)

ENV_CONTAINER_BACKEND = "REPRO_CONTAINER_BACKEND"
"""Environment variable naming the default container backend for nodes."""

DEFAULT_DECOMPRESSED_CACHE_BYTES = 32 * 1024 * 1024
"""Default budget for the compressed file backend's decompressed-section LRU
(8 default-capacity containers).  Raw spill files need no such cache -- their
``mmap`` pages live in the kernel page cache -- but a compressed section costs
a real decompression to rebuild, and fragmented restores revisit the same
container across many read windows."""


class SpillFaultHook(Protocol):
    """What a fault-injection plan exposes to the file backend.

    Every hook site in the backend is behind an ``if hook is not None`` guard,
    so an uninstrumented backend pays one attribute read and one ``is``
    comparison per event -- nothing else.  See :mod:`repro.faults`.
    """

    def on_spill(
        self, backend: "FileContainerBackend", container: Container, blob: bytes
    ) -> None:
        """Called before the spill file write; may write a partial file and
        raise :class:`~repro.errors.SimulatedCrashError`."""

    def journal_tear(
        self, backend: "FileContainerBackend", encoded: bytes
    ) -> Optional[int]:
        """Called before the journal append with the encoded record.  May
        raise (kill between data write and journal write), or return a byte
        count: the backend then appends only that prefix and raises -- a torn
        journal line, exactly as a kill mid-``write`` leaves one."""

    def on_spill_read(
        self, backend: "FileContainerBackend", container: Container
    ) -> None:
        """Called before a spill data-section load; may raise
        :class:`~repro.errors.InjectedReadError`."""


class ContainerBackend(ABC):
    """Where sealed containers' data sections live."""

    name: str = "base"

    @abstractmethod
    def on_seal(self, container: Container) -> None:
        """Called by the store right after ``container`` seals (one container
        write has already been accounted); may persist and evict the payload."""

    def close(self) -> None:
        """Release backend resources (temporary directories, open files)."""

    def __enter__(self) -> "ContainerBackend":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class InMemoryBackend(ContainerBackend):
    """Keep every container payload resident in RAM (the seed behavior).

    ``storage_dir`` and ``compression`` are accepted (and ignored) so every
    registered backend shares one construction signature and callers can
    thread the knobs unconditionally.
    """

    name = "memory"

    def __init__(
        self,
        storage_dir: "str | Path | None" = None,
        compression: Optional[str] = None,
    ):
        pass

    def on_seal(self, container: Container) -> None:
        pass


@dataclass
class SpillRecovery:
    """What :meth:`FileContainerBackend.replay_journal` reconstructed.

    ``containers`` are sealed, payload-evicted containers rebuilt from the
    journal's valid record prefix whose spill files verified intact.
    ``records_discarded`` counts journal lines dropped as torn or corrupt;
    ``records_dropped`` counts *valid* records whose data file was missing,
    truncated, or failed its CRC (possible only for the final acknowledged
    seals before a kill, or real disk damage); ``orphans_removed`` names the
    spill files deleted because no surviving record references them.
    """

    containers: List[Container] = field(default_factory=list)
    records_discarded: int = 0
    records_dropped: int = 0
    orphans_removed: List[str] = field(default_factory=list)

    @property
    def recovered_bytes(self) -> int:
        """Raw data-section bytes across all recovered containers."""
        return sum(container.used for container in self.containers)

    @property
    def recovered_chunks(self) -> int:
        return sum(container.chunk_count for container in self.containers)


class FileContainerBackend(ContainerBackend):
    """Spill sealed containers' data sections to files and evict them from RAM.

    Parameters
    ----------
    storage_dir:
        Directory receiving one ``container-<id>.cdata`` file per sealed
        container plus the ``manifest.jsonl`` journal.  When omitted, a
        private temporary directory is created and removed when the backend
        is garbage-collected or closed.
    compression:
        Registered codec name (``"none"``, ``"zlib"``, ``"zstd"``, ``"auto"``)
        applied to every spilled data section.  ``None`` defers to the
        ``REPRO_CONTAINER_COMPRESSION`` environment variable, falling back to
        ``"none"`` -- raw spill files, read back as ``mmap`` page slices.
    decompressed_cache_bytes:
        Budget for the decompressed-section LRU used when a codec is active:
        a container is decompressed once and its section cached, so a
        fragmented restore that revisits the container across many read
        windows pays the codec once, not once per window.
    fsync:
        Force every spill file and journal record to stable storage before
        the seal returns.  Off by default: the write ordering (data file
        first, journal record second) already survives a process kill -- the
        page cache outlives the process -- and ``fsync`` per seal is what
        power-loss durability costs, not what the crash tests need.

    Concurrency contract: loads are serialized by an internal lock, and a
    returned :data:`PayloadSection` is valid until the *next* load on this
    backend (loading a different container closes the previous ``mmap`` so
    page slices cannot pin unlinked spill files).  Every read path in the
    tree already finishes slicing under a per-node or per-store lock before
    another load can start.
    """

    name = "file"

    def __init__(
        self,
        storage_dir: "str | Path | None" = None,
        compression: Optional[str] = None,
        decompressed_cache_bytes: int = DEFAULT_DECOMPRESSED_CACHE_BYTES,
        fsync: bool = False,
    ):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if storage_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-containers-")
            storage_dir = self._tmpdir.name
        self.storage_dir = Path(storage_dir)
        self.storage_dir.mkdir(parents=True, exist_ok=True)
        self.compression = resolve_compression(compression)
        self.fsync = fsync
        self._codec = build_codec(self.compression)
        self.journal = ManifestJournal(self.storage_dir / MANIFEST_NAME)
        self.last_recovery: Optional[SpillRecovery] = None
        self._fault_hook: Optional[SpillFaultHook] = None
        self._closed = False
        self.spilled_containers = 0
        self.spilled_bytes = 0
        """Raw data-section bytes handed to the backend at seal time."""
        self.spilled_bytes_stored = 0
        """Bytes actually written to spill files (== ``spilled_bytes`` when
        ``compression == "none"``, smaller when a codec is active) -- the
        ``spill_bytes_stored`` metric the ingest bench records."""
        self.spill_loads = 0
        """Spill files actually read back from disk (one-slot buffer hits do
        not count) -- the metric the batched restore path minimises."""
        self._io_lock: GuardLock = guarded_lock("FileContainerBackend._io_lock")
        # One-slot read buffer: consecutive chunk reads from the same sealed
        # container (the common restore pattern) reload its file only once
        # while keeping resident payload bounded to a single container.  The
        # displaced entry's mmap is closed eagerly (see the class docstring's
        # concurrency contract), so page slices never pin unlinked files.
        self._last_loaded: Optional[Tuple[int, PayloadSection]] = None  # guarded-by: _io_lock
        # Decompressed-section LRU (compressed spills only): byte-bounded so
        # resident decompressed payload never exceeds the configured budget.
        self._decompressed: "OrderedDict[int, bytes]" = OrderedDict()  # guarded-by: _io_lock
        self._decompressed_bytes = 0  # guarded-by: _io_lock
        self._decompressed_capacity = decompressed_cache_bytes

    def install_fault_hook(self, hook: Optional[SpillFaultHook]) -> None:
        """Arm (or with ``None`` disarm) deterministic fault injection."""
        self._fault_hook = hook

    def spill_path(self, container_id: int) -> Path:
        """The spill file holding ``container_id``'s data section."""
        return self.storage_dir / f"container-{container_id:08d}.cdata"

    # ------------------------------------------------------------------ #
    # seal path (data first, journal second)
    # ------------------------------------------------------------------ #

    def on_seal(self, container: Container) -> None:
        if self._closed:
            raise StorageError("file backend is closed")
        section = container.payload_bytes()
        raw = section if isinstance(section, bytes) else section[:]
        blob = raw if self._codec is None else self._codec.compress(raw)
        hook = self._fault_hook
        if hook is not None:
            # May write a partial spill file and raise SimulatedCrashError.
            hook.on_spill(self, container, blob)
        self._write_spill_file(self.spill_path(container.container_id), blob)
        self._journal_seal(container, blob)
        self.spilled_containers += 1
        self.spilled_bytes += len(raw)
        self.spilled_bytes_stored += len(blob)
        container.evict_payload(self._load)

    def _write_spill_file(self, path: Path, blob: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _journal_seal(self, container: Container, blob: bytes) -> None:
        """Append the seal's manifest record (after its data file is down)."""
        record: Dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "container_id": container.container_id,
            "stream_id": container.stream_id,
            "capacity": container.capacity,
            "used": container.used,
            "codec": self.compression,
            "stored_length": len(blob),
            "stored_crc": zlib.crc32(blob),
            "chunks": [
                [entry.fingerprint.hex(), entry.offset, entry.length]
                for entry in container.metadata_section()
            ],
        }
        hook = self._fault_hook
        if hook is None:
            self.journal.append(record, fsync=self.fsync)
            return
        encoded = encode_record(record)
        torn = hook.journal_tear(self, encoded)
        if torn is not None:
            self.journal.append_raw(encoded[:torn], fsync=self.fsync)
            raise SimulatedCrashError(
                f"injected torn journal write for container "
                f"{container.container_id} ({torn}/{len(encoded)} bytes)"
            )
        self.journal.append_raw(encoded, fsync=self.fsync)

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #

    @classmethod
    def recover(
        cls,
        storage_dir: "str | Path",
        compression: Optional[str] = None,
        decompressed_cache_bytes: int = DEFAULT_DECOMPRESSED_CACHE_BYTES,
        verify_data: bool = True,
    ) -> "FileContainerBackend":
        """Reopen a spill directory after a hard kill.

        With ``compression=None`` the codec is sniffed from the journal's
        first record (falling back to the usual environment/default
        resolution for journals that are empty or gone).  The replayed
        :class:`SpillRecovery` is available as ``backend.last_recovery``.
        """
        if compression is None:
            first = ManifestJournal(Path(storage_dir) / MANIFEST_NAME).first_record()
            if first is not None and isinstance(first.get("codec"), str):
                compression = str(first["codec"])
        backend = cls(
            storage_dir=storage_dir,
            compression=compression,
            decompressed_cache_bytes=decompressed_cache_bytes,
        )
        backend.replay_journal(verify_data=verify_data)
        return backend

    def replay_journal(self, verify_data: bool = True) -> SpillRecovery:
        """Replay the manifest journal and garbage-collect the directory.

        Accepts the journal's longest valid record prefix (later duplicates
        of a container id win -- replica re-mirroring overwrites in place),
        verifies each referenced spill file (existence, exact stored length,
        and -- with ``verify_data`` -- the recorded CRC), deletes every
        ``.cdata`` file no surviving record references, truncates the journal
        back to its valid prefix, and resets the spill counters to the
        recovered reality.  Returns (and stores as ``last_recovery``) the
        :class:`SpillRecovery`.
        """
        if self._closed:
            raise RecoveryError("cannot replay the journal of a closed backend")
        if self.spilled_containers:
            raise RecoveryError(
                "replay_journal must run before any container seals through "
                "this backend instance"
            )
        replay = self.journal.replay()
        recovery = SpillRecovery(records_discarded=replay.discarded_lines)
        by_id: Dict[int, Dict[str, Any]] = {}
        for record in replay.records:
            codec = str(record["codec"])
            if codec != self.compression:
                raise RecoveryError(
                    f"journal record for container {record['container_id']} "
                    f"was spilled with codec {codec!r} but this backend is "
                    f"configured for {self.compression!r}"
                )
            by_id[int(record["container_id"])] = record
        stored_total = 0
        for container_id in sorted(by_id):
            record = by_id[container_id]
            stored_length = int(record["stored_length"])
            path = self.spill_path(container_id)
            if not self._spill_file_intact(path, stored_length,
                                           int(record["stored_crc"]), verify_data):
                recovery.records_dropped += 1
                path.unlink(missing_ok=True)
                continue
            entries = [
                ContainerMetadataEntry(
                    fingerprint=bytes.fromhex(str(fingerprint)),
                    offset=int(offset),
                    length=int(length),
                )
                for fingerprint, offset, length in record["chunks"]
            ]
            recovery.containers.append(
                Container.from_recovered(
                    container_id=container_id,
                    capacity=int(record["capacity"]),
                    stream_id=int(record["stream_id"]),
                    entries=entries,
                    loader=self._load,
                )
            )
            stored_total += stored_length
        recovered_ids = {container.container_id for container in recovery.containers}
        for path in sorted(self.storage_dir.glob("container-*.cdata")):
            file_id = self._spill_file_id(path)
            if file_id is None or file_id not in recovered_ids:
                recovery.orphans_removed.append(path.name)
                path.unlink(missing_ok=True)
        if recovery.records_dropped:
            # Dropped records reference data files that no longer exist:
            # truncation would leave their lines to be re-dropped on every
            # later replay, so rewrite the journal to the surviving set.
            self.journal.rewrite(
                [by_id[container_id] for container_id in sorted(recovered_ids)],
                fsync=self.fsync,
            )
        else:
            self.journal.truncate(replay.valid_bytes)
        self.spilled_containers = len(recovery.containers)
        self.spilled_bytes = recovery.recovered_bytes
        self.spilled_bytes_stored = stored_total
        self.last_recovery = recovery
        return recovery

    @staticmethod
    def _spill_file_intact(
        path: Path, stored_length: int, stored_crc: int, verify_data: bool
    ) -> bool:
        try:
            if path.stat().st_size != stored_length:
                return False
            if verify_data:
                return zlib.crc32(path.read_bytes()) == stored_crc
            return True
        except OSError:
            return False

    @staticmethod
    def _spill_file_id(path: Path) -> Optional[int]:
        name = path.name
        stem = name[len("container-"):-len(".cdata")]
        try:
            return int(stem)
        except ValueError:
            return None

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #

    def _map_spill_file(self, container: Container) -> PayloadSection:
        """``mmap`` the spill file (``bytes`` only for the empty-file case)."""
        path = self.spill_path(container.container_id)
        try:
            with open(path, "rb") as handle:
                try:
                    return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError:
                    # A zero-length file cannot be mapped; an empty section is
                    # still a valid (degenerate) spill.
                    return handle.read()
        except OSError as exc:
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is missing "
                f"or unreadable: {path}"
            ) from exc

    def _load(self, container: Container) -> PayloadSection:
        if self._closed:
            raise StorageError("file backend is closed")
        hook = self._fault_hook
        if hook is not None:
            # May raise InjectedReadError (probabilistic read fault).
            hook.on_spill_read(self, container)
        with self._io_lock:
            return self._load_locked(container)

    def _load_locked(self, container: Container) -> PayloadSection:  # holds-lock: _io_lock
        cached = self._last_loaded
        if cached is not None and cached[0] == container.container_id:
            return cached[1]
        if self._codec is not None:
            remembered = self._decompressed.get(container.container_id)
            if remembered is not None:
                # Decompressed-LRU hit: the codec already ran for this
                # container; neither a spill load nor a decompression happens.
                self._decompressed.move_to_end(container.container_id)
                self._replace_loaded(container.container_id, remembered)
                return remembered
        stored = self._map_spill_file(container)
        payload: PayloadSection
        if self._codec is None:
            # Raw spill: serve the map itself; chunk reads slice windows out
            # of it (mmap slices return bytes), never copying the whole file.
            payload = stored
        else:
            try:
                section = self._codec.decompress(stored, container.used)
            except CompressionError as exc:
                raise ContainerNotFoundError(
                    f"spill file for container {container.container_id} cannot "
                    f"be decompressed ({self.compression}): "
                    f"{self.spill_path(container.container_id)}"
                ) from exc
            finally:
                if isinstance(stored, mmap.mmap):
                    stored.close()
            self._remember_decompressed(container.container_id, section)
            payload = section
        found = len(payload)
        if found != container.used:
            if isinstance(payload, mmap.mmap):
                payload.close()
            raise ContainerNotFoundError(
                f"spill file for container {container.container_id} is truncated: "
                f"expected {container.used} bytes, found {found} "
                f"({self.spill_path(container.container_id)})"
            )
        self.spill_loads += 1
        self._replace_loaded(container.container_id, payload)
        return payload

    def _replace_loaded(self, container_id: int, payload: PayloadSection) -> None:  # holds-lock: _io_lock
        """Install the new one-slot buffer entry, closing the displaced mmap
        so its pages stop pinning a (possibly unlinked) spill file."""
        previous = self._last_loaded
        self._last_loaded = (container_id, payload)
        if (
            previous is not None
            and previous[1] is not payload
            and isinstance(previous[1], mmap.mmap)
        ):
            previous[1].close()

    def _remember_decompressed(self, container_id: int, section: bytes) -> None:  # holds-lock: _io_lock
        """LRU-cache a decompressed data section within the byte budget."""
        if len(section) > self._decompressed_capacity:
            return
        previous = self._decompressed.pop(container_id, None)
        if previous is not None:
            self._decompressed_bytes -= len(previous)
        self._decompressed[container_id] = section
        self._decompressed_bytes += len(section)
        while self._decompressed_bytes > self._decompressed_capacity:
            _, evicted = self._decompressed.popitem(last=False)
            self._decompressed_bytes -= len(evicted)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the one-slot ``mmap``, the decompressed LRU and any private
        temporary directory.  Idempotent; loads after close raise
        :class:`~repro.errors.StorageError`."""
        if self._closed:
            return
        self._closed = True
        with self._io_lock:
            cached = self._last_loaded
            self._last_loaded = None
            self._decompressed.clear()
            self._decompressed_bytes = 0
            if cached is not None and isinstance(cached[1], mmap.mmap):
                cached[1].close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "FileContainerBackend":
        return self


CONTAINER_BACKENDS: Dict[str, Callable[..., ContainerBackend]] = {
    InMemoryBackend.name: InMemoryBackend,
    FileContainerBackend.name: FileContainerBackend,
}
"""Registry of container backend constructors by name."""


def build_container_backend(
    name: str,
    storage_dir: "str | Path | None" = None,
    compression: Optional[str] = None,
) -> ContainerBackend:
    """Instantiate a registered container backend by name.

    Every registered factory is called as ``factory(storage_dir=...,
    compression=...)``; backends that need no directory or codec (the
    in-memory one, or third-party registrations) simply ignore them.
    """
    try:
        factory = CONTAINER_BACKENDS[name]
    except KeyError:
        raise StorageError(
            f"unknown container backend {name!r}; expected one of "
            f"{sorted(CONTAINER_BACKENDS)}"
        ) from None
    return factory(storage_dir=storage_dir, compression=compression)
