"""The traditional full chunk-fingerprint index (simulated on-disk).

"To support high deduplication effectiveness, we also maintain a traditional
hash-table based chunk fingerprint index on disk to support further comparison
after in-cache fingerprint lookup fails, but we consider it as a relatively
rare occurrence." (paper Section 3.3)

The index maps every stored chunk fingerprint to the container that holds the
chunk.  It lives in a Python dict, but every lookup and insert is counted so
callers can model the cost of on-disk index I/O -- the very bottleneck the
similarity index + fingerprint cache are designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class DiskChunkIndex:
    """Simulated on-disk full chunk index: fingerprint -> container id.

    The ``enabled`` flag supports the paper's "similarity-index-only" ablation
    (Figure 5(b)): when disabled, lookups always miss and inserts are dropped,
    so deduplication falls back to whatever the similarity index + cache find.
    """

    def __init__(self, enabled: bool = True, entry_size_bytes: int = 40):
        self.enabled = enabled
        self.entry_size_bytes = entry_size_bytes
        self._index: Dict[bytes, int] = {}
        self.lookups = 0
        self.lookup_hits = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, fingerprint: bytes) -> bool:
        return self.enabled and fingerprint in self._index

    def lookup(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id that stores ``fingerprint``, or ``None``.

        Counted as a (simulated) disk index I/O.
        """
        self.lookups += 1
        if not self.enabled:
            return None
        container_id = self._index.get(fingerprint)
        if container_id is not None:
            self.lookup_hits += 1
        return container_id

    def peek(self, fingerprint: bytes) -> Optional[int]:
        """Like :meth:`lookup` but without counting a simulated index I/O.

        For read-only probes (restores, routing samples) that must not
        pollute the lookup/hit statistics the backup path is measured by.
        """
        if not self.enabled:
            return None
        return self._index.get(fingerprint)

    def insert(self, fingerprint: bytes, container_id: int) -> None:
        """Record that ``fingerprint`` is stored in ``container_id``."""
        if not self.enabled:
            return
        self.inserts += 1
        self._index[fingerprint] = container_id

    def insert_many(self, fingerprints: Iterable[bytes], container_id: int) -> None:
        for fingerprint in fingerprints:
            self.insert(fingerprint, container_id)

    @property
    def size_in_bytes(self) -> int:
        """RAM/disk footprint estimate at ``entry_size_bytes`` per entry."""
        return len(self._index) * self.entry_size_bytes

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.lookup_hits / self.lookups
