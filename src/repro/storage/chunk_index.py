"""The traditional full chunk-fingerprint index (simulated on-disk).

"To support high deduplication effectiveness, we also maintain a traditional
hash-table based chunk fingerprint index on disk to support further comparison
after in-cache fingerprint lookup fails, but we consider it as a relatively
rare occurrence." (paper Section 3.3)

The index maps every stored chunk fingerprint to the container that holds the
chunk.  It lives in a Python dict, but every lookup and insert is counted so
callers can model the cost of on-disk index I/O -- the very bottleneck the
similarity index + fingerprint cache are designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple


class DiskChunkIndex:
    """Simulated on-disk full chunk index: fingerprint -> container id.

    The ``enabled`` flag supports the paper's "similarity-index-only" ablation
    (Figure 5(b)): when disabled, lookups always miss and inserts are dropped,
    so deduplication falls back to whatever the similarity index + cache find.
    """

    def __init__(self, enabled: bool = True, entry_size_bytes: int = 40):
        self.enabled = enabled
        self.entry_size_bytes = entry_size_bytes
        self._index: Dict[bytes, int] = {}
        self.lookups = 0
        self.lookup_hits = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, fingerprint: bytes) -> bool:
        return self.enabled and fingerprint in self._index

    def lookup(self, fingerprint: bytes) -> Optional[int]:
        """Return the container id that stores ``fingerprint``, or ``None``.

        Counted as a (simulated) disk index I/O.
        """
        self.lookups += 1
        if not self.enabled:
            return None
        container_id = self._index.get(fingerprint)
        if container_id is not None:
            self.lookup_hits += 1
        return container_id

    def peek(self, fingerprint: bytes) -> Optional[int]:
        """Like :meth:`lookup` but without counting a simulated index I/O.

        For read-only probes (restores, routing samples) that must not
        pollute the lookup/hit statistics the backup path is measured by.
        """
        if not self.enabled:
            return None
        return self._index.get(fingerprint)

    def lookup_many(self, fingerprints: Sequence[bytes]) -> Dict[bytes, int]:
        """Batched lookup of *distinct* fingerprints: ``fingerprint ->
        container id`` for every hit.

        One dict-view pass instead of per-fingerprint calls; for distinct
        inputs the counters advance exactly as ``len(fingerprints)``
        :meth:`lookup` calls would (a repeated fingerprint would count every
        occurrence as a lookup but only one as a hit).
        """
        self.lookups += len(fingerprints)
        if not self.enabled:
            return {}
        index = self._index
        found = {fp: index[fp] for fp in fingerprints if fp in index}
        self.lookup_hits += len(found)
        return found

    def match_batch(self, fingerprints: Iterable[bytes]) -> Dict[bytes, int]:
        """Counter-free ``fingerprint -> container id`` map for batch execution.

        The batched node data plane resolves the whole super-chunk against
        this snapshot and then accounts only the lookups it would actually
        have issued (cache misses) via :meth:`record_lookups`, keeping the
        simulated-I/O statistics identical to the per-chunk path.
        """
        if not self.enabled:
            return {}
        index = self._index
        return {fp: index[fp] for fp in fingerprints if fp in index}

    def peek_many(self, fingerprints: Iterable[bytes]) -> Set[bytes]:
        """The subset of ``fingerprints`` present, as a set-intersection probe.

        Counter-free, like :meth:`peek`: routing samples and other read-only
        probes must not pollute the lookup/hit statistics.
        """
        if not self.enabled:
            return set()
        if not isinstance(fingerprints, (set, frozenset)):
            fingerprints = set(fingerprints)
        return self._index.keys() & fingerprints

    def record_lookups(self, lookups: int, hits: int) -> None:
        """Account a batch of simulated index lookups in bulk."""
        self.lookups += lookups
        self.lookup_hits += hits

    def insert(self, fingerprint: bytes, container_id: int) -> None:
        """Record that ``fingerprint`` is stored in ``container_id``."""
        if not self.enabled:
            return
        self.inserts += 1
        self._index[fingerprint] = container_id

    def insert_many(self, fingerprints: Iterable[bytes], container_id: int) -> None:
        for fingerprint in fingerprints:
            self.insert(fingerprint, container_id)

    def insert_batch(self, items: Iterable[Tuple[bytes, int]]) -> None:
        """Insert many ``(fingerprint, container id)`` pairs in one dict update."""
        if not self.enabled:
            return
        pairs = items if isinstance(items, dict) else dict(items)
        self._index.update(pairs)
        self.inserts += len(pairs)

    @property
    def size_in_bytes(self) -> int:
        """RAM/disk footprint estimate at ``entry_size_bytes`` per entry."""
        return len(self._index) * self.entry_size_bytes

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.lookup_hits / self.lookups
