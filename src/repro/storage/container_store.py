"""Parallel container management.

"Our deduplication server design supports parallel container management to
allocate, deallocate, read, write and reliably store containers in parallel.
For parallel data store, a dedicated open container is maintained for each
coming data stream, and a new one is opened up when the container fills up.
All disk accesses are performed at the granularity of a container."
(paper Section 3.3)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runtime import GuardLock, assert_owned, guarded_lock
from repro.errors import ContainerNotFoundError, RecoveryError, ValidationError
from repro.fingerprint.fingerprinter import ChunkRecord
from repro.storage.backends import ContainerBackend, InMemoryBackend, SpillRecovery
from repro.storage.container import Container, DEFAULT_CONTAINER_CAPACITY
from repro.utils.stats import SnapshotCounter


class ContainerStore:
    """Holds every container of one deduplication node.

    A dedicated open container is kept per data stream; appending a chunk that
    does not fit seals the open container and opens a new one.  A chunk larger
    than the configured capacity goes to a dedicated oversize container that is
    sealed immediately (one container write) without disturbing the stream's
    open container.  Disk reads and writes are counted at container granularity
    through the ``container_reads`` and ``container_writes`` counters, which
    the simulator uses as its model of disk I/O cost.

    Where sealed containers' data sections live is delegated to a
    :class:`~repro.storage.backends.ContainerBackend`; the default keeps them
    in RAM, the file backend spills them to disk and evicts the payload.
    """

    def __init__(
        self,
        container_capacity: int = DEFAULT_CONTAINER_CAPACITY,
        backend: Optional[ContainerBackend] = None,
    ):
        if container_capacity < 1:
            raise ValidationError("container_capacity must be positive")
        self.container_capacity = container_capacity
        self.backend = backend or InMemoryBackend()
        self._containers: Dict[int, Container] = {}  # guarded-by: _lock
        self._open_by_stream: Dict[int, Container] = {}  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        self._lock: GuardLock = guarded_lock("ContainerStore._lock")
        self.container_reads = 0  # guarded-by: _lock
        self.container_writes = 0  # guarded-by: _lock
        # Running totals so storage_usage probes (consulted by sigma routing
        # for every candidate on every super-chunk) stay O(1) instead of
        # O(#containers).  SnapshotCounters: mutated only under _lock, read
        # lock-free as tear-free snapshots (atomic attribute rebinding) --
        # the counter objects themselves are never rebound.
        self._stored_bytes = SnapshotCounter()
        self._stored_chunks = SnapshotCounter()
        # Seal observation log for container replication: when armed, every
        # seal appends its container id, and the replication manager drains
        # the log to mirror those containers to successor nodes.
        self.track_seals = False
        self._seal_log: List[int] = []  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def _allocate(self, stream_id: int, capacity: Optional[int] = None) -> Container:  # holds-lock: _lock
        container = Container(
            container_id=self._next_id,
            capacity=capacity if capacity is not None else self.container_capacity,
            stream_id=stream_id,
        )
        self._containers[self._next_id] = container
        self._next_id += 1
        return container

    def _seal(self, container: Container) -> None:  # holds-lock: _lock
        """Seal a container, count the whole-unit write and hand it to the backend."""
        container.seal()
        self.container_writes += 1
        self.backend.on_seal(container)
        if self.track_seals:
            self._seal_log.append(container.container_id)

    def _store_oversize(self, chunk: ChunkRecord, stream_id: int) -> int:  # holds-lock: _lock
        """Store a chunk larger than the configured capacity (lock held).

        The chunk gets a dedicated container sized to fit, sealed immediately
        (one container write); the stream's open container is left untouched.
        """
        container = self._allocate(stream_id, capacity=chunk.length)
        container.append(chunk)
        self._stored_bytes.add(chunk.length)
        self._stored_chunks.add(1)
        self._seal(container)
        return container.container_id

    def open_container(self, stream_id: int = 0) -> Container:
        """Return the open container for ``stream_id``, allocating one if needed."""
        with self._lock:
            container = self._open_by_stream.get(stream_id)
            if container is None or container.sealed:
                container = self._allocate(stream_id)
                self._open_by_stream[stream_id] = container
            return container

    def store_chunk(self, chunk: ChunkRecord, stream_id: int = 0) -> int:
        """Store a unique chunk into the stream's open container.

        Returns the container id the chunk was written to.  Sealing a full
        container counts as one container write (the whole unit goes to disk).
        """
        with self._lock:
            if chunk.length > self.container_capacity:
                return self._store_oversize(chunk, stream_id)
            container = self._open_by_stream.get(stream_id)
            if container is None or container.sealed or not container.has_room_for(chunk.length):
                if container is not None and not container.sealed:
                    self._seal(container)
                container = self._allocate(stream_id)
                self._open_by_stream[stream_id] = container
            container.append(chunk)
            self._stored_bytes.add(chunk.length)
            self._stored_chunks.add(1)
            return container.container_id

    def store_chunks(self, chunks: Sequence[ChunkRecord], stream_id: int = 0) -> List[int]:
        """Store a batch of unique chunks, partitioning them into containers
        in one pass under one lock acquisition.

        Equivalent to calling :meth:`store_chunk` once per chunk in order:
        identical container ids, contents, seal timing and write accounting --
        this is the batched append of the node's super-chunk data plane.
        Returns the container id of every chunk, aligned with ``chunks``.
        """
        container_ids: List[int] = []
        append_id = container_ids.append
        capacity = self.container_capacity
        with self._lock:
            container = self._open_by_stream.get(stream_id)
            if container is not None and container.sealed:
                container = None
            free = container.free if container is not None else 0
            run: List[ChunkRecord] = []
            run_append = run.append
            stored_bytes = 0
            stored_chunks = 0

            def flush_run() -> None:
                if run:
                    container.append_many(run)
                    run.clear()

            for chunk in chunks:
                length = chunk.length
                if length > capacity:
                    # _store_oversize accounts its own chunk and leaves the
                    # stream's open container (and its pending run) untouched.
                    append_id(self._store_oversize(chunk, stream_id))
                    continue
                if container is None or length > free:
                    flush_run()
                    if container is not None:
                        self._seal(container)
                    container = self._allocate(stream_id)
                    self._open_by_stream[stream_id] = container
                    free = container.free
                run_append(chunk)
                free -= length
                stored_bytes += length
                stored_chunks += 1
                append_id(container.container_id)
            flush_run()
            self._stored_bytes.add(stored_bytes)
            self._stored_chunks.add(stored_chunks)
        return container_ids

    def flush(self) -> None:
        """Seal every open container (end of a backup session)."""
        with self._lock:
            for container in self._open_by_stream.values():
                if not container.sealed and container.chunk_count > 0:
                    self._seal(container)
            self._open_by_stream.clear()

    def drain_sealed(self) -> List[int]:
        """Return and clear the ids sealed since the last drain (replication)."""
        with self._lock:
            sealed = self._seal_log
            self._seal_log = []
            return sealed

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #

    def adopt_recovered(self, recovery: SpillRecovery) -> None:
        """Populate an empty store from a backend's journal replay.

        The disaster path: the recovered containers (sealed, payload-evicted)
        become the store's whole population, ``_next_id`` resumes past the
        highest recovered id, and the storage counters are rebuilt from the
        recovered metadata.  ``container_writes`` counts each recovered
        container's original seal; ``container_reads`` restarts at zero
        (historical read accounting did not survive the crash, and recovery
        does not pretend it did).  With ``track_seals`` armed the recovered
        ids also enter the seal log, so a replication manager re-mirrors them
        on its next sync.
        """
        with self._lock:
            if self._containers or self._open_by_stream:
                raise RecoveryError(
                    "adopt_recovered requires an empty store "
                    f"({len(self._containers)} containers present)"
                )
            for container in recovery.containers:
                self._containers[container.container_id] = container
                if self.track_seals:
                    self._seal_log.append(container.container_id)
            if self._containers:
                self._next_id = max(self._containers) + 1
            self.container_writes += len(recovery.containers)
            self._stored_bytes.add(recovery.recovered_bytes)
            self._stored_chunks.add(recovery.recovered_chunks)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, container_id: int) -> Container:
        """Return a container by id without touching the I/O counters."""
        with self._lock:
            return self._get_locked(container_id)

    def _get_locked(self, container_id: int) -> Container:  # holds-lock: _lock
        assert_owned(self._lock, "ContainerStore._get_locked")
        try:
            return self._containers[container_id]
        except KeyError:
            raise ContainerNotFoundError(f"container {container_id} does not exist") from None

    def read_container(self, container_id: int) -> Container:
        """Read a whole container from disk (counted as one container read)."""
        with self._lock:
            container = self._get_locked(container_id)
            self.container_reads += 1
        return container

    def read_chunk(self, container_id: int, fingerprint: bytes) -> Optional[bytes]:
        """Read a chunk payload out of a container (one container-granularity read).

        With a spill-to-disk backend this reloads the container's spill file;
        a missing or truncated file raises
        :class:`~repro.errors.ContainerNotFoundError`.
        """
        container = self.read_container(container_id)
        return container.read_chunk(fingerprint)

    def read_chunks(
        self, requests: Sequence[Tuple[int, bytes]]
    ) -> List[Optional[bytes]]:
        """Bulk chunk reads grouped by container: the batched restore path.

        ``requests`` is a sequence of ``(container_id, fingerprint)`` pairs in
        any order; payloads come back aligned with it.  Each distinct
        container is read exactly once -- one container-granularity read on
        the I/O counters and, with a spill backend, one data-section load --
        however many chunks of it the batch wants, versus one read per chunk
        on the per-chunk path.  An unknown container id raises
        :class:`~repro.errors.ContainerNotFoundError`; a fingerprint the
        container does not hold yields ``None`` at its position.
        """
        by_container: Dict[int, List[int]] = {}
        for position, (container_id, _fingerprint) in enumerate(requests):
            by_container.setdefault(container_id, []).append(position)
        results: List[Optional[bytes]] = [None] * len(requests)
        for container_id, positions in by_container.items():
            container = self.read_container(container_id)
            payloads = container.read_chunks(
                [requests[position][1] for position in positions]
            )
            for position, payload in zip(positions, payloads):
                results[position] = payload
        return results

    def prefetch_metadata(self, container_id: int) -> List[bytes]:
        """Read the metadata section of a container: the fingerprint prefetch path."""
        with self._lock:
            container = self._get_locked(container_id)
            self.container_reads += 1
        return container.fingerprints()

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def container_count(self) -> int:
        with self._lock:
            return len(self._containers)

    @property
    def stored_bytes(self) -> int:
        """Total bytes in all data sections (the node's physical capacity usage).

        Maintained as a :class:`~repro.utils.stats.SnapshotCounter`, so the
        per-candidate ``storage_usage`` probes of sigma routing cost O(1) and
        read lock-free -- but as tear-free snapshots (one atomic attribute
        read), not the waivered racy bare-``int`` read this used to be.
        """
        return self._stored_bytes.value

    @property
    def stored_chunks(self) -> int:
        return self._stored_chunks.value

    @property
    def resident_payload_bytes(self) -> int:
        """Bytes of container payload currently held in RAM (spilled sealed
        containers do not count -- the bounded-footprint metric)."""
        with self._lock:
            return sum(
                container.used
                for container in self._containers.values()
                if container.payload_resident
            )

    def container_ids(self) -> List[int]:
        with self._lock:
            return list(self._containers.keys())
