"""Parallel container management.

"Our deduplication server design supports parallel container management to
allocate, deallocate, read, write and reliably store containers in parallel.
For parallel data store, a dedicated open container is maintained for each
coming data stream, and a new one is opened up when the container fills up.
All disk accesses are performed at the granularity of a container."
(paper Section 3.3)
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import ContainerNotFoundError
from repro.fingerprint.fingerprinter import ChunkRecord
from repro.storage.container import Container, DEFAULT_CONTAINER_CAPACITY


class ContainerStore:
    """Holds every container of one deduplication node.

    A dedicated open container is kept per data stream; appending a chunk that
    does not fit seals the open container and opens a new one.  Disk reads and
    writes are counted at container granularity through the ``container_reads``
    and ``container_writes`` counters, which the simulator uses as its model of
    disk I/O cost.
    """

    def __init__(self, container_capacity: int = DEFAULT_CONTAINER_CAPACITY):
        if container_capacity < 1:
            raise ValueError("container_capacity must be positive")
        self.container_capacity = container_capacity
        self._containers: Dict[int, Container] = {}
        self._open_by_stream: Dict[int, Container] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self.container_reads = 0
        self.container_writes = 0

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def _allocate(self, stream_id: int) -> Container:
        container = Container(
            container_id=self._next_id,
            capacity=self.container_capacity,
            stream_id=stream_id,
        )
        self._containers[self._next_id] = container
        self._next_id += 1
        return container

    def open_container(self, stream_id: int = 0) -> Container:
        """Return the open container for ``stream_id``, allocating one if needed."""
        with self._lock:
            container = self._open_by_stream.get(stream_id)
            if container is None or container.sealed:
                container = self._allocate(stream_id)
                self._open_by_stream[stream_id] = container
            return container

    def store_chunk(self, chunk: ChunkRecord, stream_id: int = 0) -> int:
        """Store a unique chunk into the stream's open container.

        Returns the container id the chunk was written to.  Sealing a full
        container counts as one container write (the whole unit goes to disk).
        """
        with self._lock:
            container = self._open_by_stream.get(stream_id)
            if container is None or container.sealed or not container.has_room_for(chunk.length):
                if container is not None and not container.sealed:
                    container.seal()
                    self.container_writes += 1
                container = self._allocate(stream_id)
                self._open_by_stream[stream_id] = container
            container.append(chunk)
            return container.container_id

    def flush(self) -> None:
        """Seal every open container (end of a backup session)."""
        with self._lock:
            for container in self._open_by_stream.values():
                if not container.sealed and container.chunk_count > 0:
                    container.seal()
                    self.container_writes += 1
            self._open_by_stream.clear()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, container_id: int) -> Container:
        """Return a container by id without touching the I/O counters."""
        try:
            return self._containers[container_id]
        except KeyError:
            raise ContainerNotFoundError(f"container {container_id} does not exist") from None

    def read_container(self, container_id: int) -> Container:
        """Read a whole container from disk (counted as one container read)."""
        container = self.get(container_id)
        self.container_reads += 1
        return container

    def read_chunk(self, container_id: int, fingerprint: bytes) -> Optional[bytes]:
        """Read a chunk payload out of a container (one container-granularity read)."""
        container = self.read_container(container_id)
        return container.read_chunk(fingerprint)

    def prefetch_metadata(self, container_id: int) -> List[bytes]:
        """Read the metadata section of a container: the fingerprint prefetch path."""
        container = self.get(container_id)
        self.container_reads += 1
        return container.fingerprints()

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def container_count(self) -> int:
        return len(self._containers)

    @property
    def stored_bytes(self) -> int:
        """Total bytes in all data sections (the node's physical capacity usage)."""
        return sum(container.used for container in self._containers.values())

    @property
    def stored_chunks(self) -> int:
        return sum(container.chunk_count for container in self._containers.values())

    def container_ids(self) -> List[int]:
        return list(self._containers.keys())
