"""Containers: the locality-preserving unit of on-disk chunk storage.

"Container is a self-describing data structure stored in disk to preserve
locality ... that includes a data section to store data chunks and a metadata
section to store their metadata information, such as chunk fingerprint, offset
and length." (paper Section 3.3)

Containers in this reproduction live in memory (the evaluation uses a RAM file
system anyway) but keep the same structure and are only ever read or written
as whole units, so disk-access accounting done at container granularity is
faithful to the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ContainerFullError
from repro.fingerprint.fingerprinter import ChunkRecord

DEFAULT_CONTAINER_CAPACITY = 4 * 1024 * 1024
"""Default container data-section capacity in bytes (4 MiB, a common choice in
container-based dedup stores such as DDFS)."""


@dataclass(frozen=True)
class ContainerMetadataEntry:
    """One row of a container's metadata section."""

    fingerprint: bytes
    offset: int
    length: int


@dataclass
class Container:
    """An append-only container of unique chunks.

    Attributes
    ----------
    container_id:
        Cluster-node-local identifier (the CID stored in the similarity index).
    capacity:
        Maximum size of the data section in bytes.
    stream_id:
        The data stream the container was opened for (parallel container
        management keeps one open container per stream).
    """

    container_id: int
    capacity: int = DEFAULT_CONTAINER_CAPACITY
    stream_id: int = 0
    sealed: bool = False
    _data: bytearray = field(default_factory=bytearray, repr=False)
    _metadata: List[ContainerMetadataEntry] = field(default_factory=list, repr=False)
    _offsets: Dict[bytes, ContainerMetadataEntry] = field(default_factory=dict, repr=False)

    @property
    def used(self) -> int:
        """Bytes currently used in the data section."""
        return len(self._data)

    @property
    def free(self) -> int:
        """Bytes still available in the data section."""
        return self.capacity - len(self._data)

    @property
    def chunk_count(self) -> int:
        return len(self._metadata)

    def has_room_for(self, length: int) -> bool:
        """Whether a chunk of ``length`` bytes fits in the remaining space."""
        return not self.sealed and length <= self.free

    def append(self, chunk: ChunkRecord) -> ContainerMetadataEntry:
        """Append a unique chunk; returns the metadata entry recorded for it.

        Raises
        ------
        ContainerFullError
            If the container is sealed or cannot hold the chunk.
        """
        if self.sealed:
            raise ContainerFullError(f"container {self.container_id} is sealed")
        if chunk.length > self.free:
            raise ContainerFullError(
                f"container {self.container_id} has {self.free} bytes free, "
                f"chunk needs {chunk.length}"
            )
        entry = ContainerMetadataEntry(
            fingerprint=chunk.fingerprint,
            offset=len(self._data),
            length=chunk.length,
        )
        if chunk.data is not None:
            self._data.extend(chunk.data)
        else:
            # Fingerprint-only traces carry no payload; account the space so
            # physical-capacity statistics stay correct.
            self._data.extend(b"\x00" * chunk.length)
        self._metadata.append(entry)
        self._offsets[chunk.fingerprint] = entry
        return entry

    def seal(self) -> None:
        """Mark the container immutable (it is now a candidate for prefetching only)."""
        self.sealed = True

    def contains(self, fingerprint: bytes) -> bool:
        return fingerprint in self._offsets

    def read_chunk(self, fingerprint: bytes) -> Optional[bytes]:
        """Return the payload of a chunk stored in this container, or ``None``."""
        entry = self._offsets.get(fingerprint)
        if entry is None:
            return None
        return bytes(self._data[entry.offset:entry.offset + entry.length])

    def metadata_section(self) -> List[ContainerMetadataEntry]:
        """The metadata section (copied), what a prefetch reads from disk."""
        return list(self._metadata)

    def fingerprints(self) -> List[bytes]:
        """All chunk fingerprints stored in this container, in append order."""
        return [entry.fingerprint for entry in self._metadata]

    def metadata_size_bytes(self, entry_size: int = 40) -> int:
        """Approximate size of the metadata section (40 B per entry by default,
        the per-entry size the paper's RAM estimate assumes)."""
        return self.chunk_count * entry_size
