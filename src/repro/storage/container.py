"""Containers: the locality-preserving unit of on-disk chunk storage.

"Container is a self-describing data structure stored in disk to preserve
locality ... that includes a data section to store data chunks and a metadata
section to store their metadata information, such as chunk fingerprint, offset
and length." (paper Section 3.3)

Where a container's data section lives is a backend decision (see
:mod:`repro.storage.backends`): the default in-memory backend keeps it resident
(the evaluation uses a RAM file system anyway), while the spill-to-disk backend
evicts the payload of sealed containers to a file and reloads it on demand.
Either way containers are only ever read or written as whole units, so
disk-access accounting done at container granularity is faithful to the
paper's design.  The metadata section always stays resident.

A resident data section is held as the list of (immutable) chunk payloads in
append order rather than one contiguous buffer: appending a batch of unique
chunks then costs no memcpy at all, and the contiguous form is materialised
only when a backend actually writes the container out
(:meth:`Container.payload_bytes`).  The metadata offsets always describe the
contiguous layout, so the spilled file and the resident view stay coherent.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Union

from repro.errors import ContainerFullError, ContainerNotFoundError, StorageError
from repro.fingerprint.fingerprinter import ChunkRecord

DEFAULT_CONTAINER_CAPACITY = 4 * 1024 * 1024
"""Default container data-section capacity in bytes (4 MiB, a common choice in
container-based dedup stores such as DDFS)."""

PayloadSection = Union[bytes, mmap.mmap]
"""A contiguous container data section as backends serve it: plain ``bytes``,
or an ``mmap`` over the spill file so restore windows slice pages lazily
instead of copying the whole file.  Both slice to ``bytes``, which is all the
read path ever does with one."""


class ContainerMetadataEntry(NamedTuple):
    """One row of a container's metadata section.

    A named tuple rather than a dataclass: one entry is created per stored
    chunk, squarely on the batched-append hot path, and the C-level tuple
    constructor is several times cheaper than a frozen dataclass ``__init__``.
    """

    fingerprint: bytes
    offset: int
    length: int


@dataclass
class Container:
    """An append-only container of unique chunks.

    Attributes
    ----------
    container_id:
        Cluster-node-local identifier (the CID stored in the similarity index).
    capacity:
        Maximum size of the data section in bytes.
    stream_id:
        The data stream the container was opened for (parallel container
        management keeps one open container per stream).
    """

    container_id: int
    capacity: int = DEFAULT_CONTAINER_CAPACITY
    stream_id: int = 0
    sealed: bool = False
    _parts: Optional[List[bytes]] = field(default_factory=list, repr=False)
    _metadata: List[ContainerMetadataEntry] = field(default_factory=list, repr=False)
    _index_of: Dict[bytes, int] = field(default_factory=dict, repr=False)
    _used: int = field(default=0, repr=False)
    _loader: Optional[Callable[["Container"], PayloadSection]] = field(default=None, repr=False)

    @classmethod
    def from_recovered(
        cls,
        container_id: int,
        capacity: int,
        stream_id: int,
        entries: Sequence[ContainerMetadataEntry],
        loader: Optional[Callable[["Container"], PayloadSection]] = None,
        parts: Optional[List[bytes]] = None,
    ) -> "Container":
        """Rebuild a sealed container from its metadata section.

        The disaster path (journal replay) passes ``loader`` and gets an
        evicted container whose payload reloads through the backend; the
        replication path passes ``parts`` (per-chunk payload slices aligned
        with ``entries``) and gets a resident clone.  Exactly one of the two
        must be given.  ``used`` is recomputed from the entry lengths, which
        equals the contiguous-layout total by construction.
        """
        if (loader is None) == (parts is None):
            raise StorageError(
                "from_recovered needs exactly one of loader= or parts="
            )
        if parts is not None and len(parts) != len(entries):
            raise StorageError(
                f"recovered container {container_id}: {len(entries)} metadata "
                f"entries but {len(parts)} payload parts"
            )
        container = cls(
            container_id=container_id,
            capacity=capacity,
            stream_id=stream_id,
            sealed=True,
        )
        container._metadata = list(entries)
        container._index_of = {
            entry.fingerprint: position
            for position, entry in enumerate(container._metadata)
        }
        container._used = sum(entry.length for entry in container._metadata)
        container._parts = parts
        container._loader = loader
        return container

    @property
    def used(self) -> int:
        """Bytes currently used in the data section (tracked O(1), valid even
        after the payload has been evicted to a backend)."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes still available in the data section."""
        return self.capacity - self._used

    @property
    def chunk_count(self) -> int:
        return len(self._metadata)

    @property
    def payload_resident(self) -> bool:
        """Whether the data section is currently held in RAM."""
        return self._parts is not None

    def has_room_for(self, length: int) -> bool:
        """Whether a chunk of ``length`` bytes fits in the remaining space."""
        return not self.sealed and length <= self.free

    @staticmethod
    def _payload_of(chunk: ChunkRecord) -> bytes:
        data = chunk.data
        if data is None:
            # Fingerprint-only traces carry no payload; account the space so
            # physical-capacity statistics stay correct.
            return b"\x00" * chunk.length
        # Immutable payloads are stored by reference (zero-copy); anything
        # mutable (bytearray, memoryview) is snapshotted.
        return data if type(data) is bytes else bytes(data)

    def append(self, chunk: ChunkRecord) -> ContainerMetadataEntry:
        """Append a unique chunk; returns the metadata entry recorded for it.

        Raises
        ------
        ContainerFullError
            If the container is sealed or cannot hold the chunk.
        """
        if self.sealed:
            raise ContainerFullError(f"container {self.container_id} is sealed")
        if chunk.length > self.free:
            raise ContainerFullError(
                f"container {self.container_id} has {self.free} bytes free, "
                f"chunk needs {chunk.length}"
            )
        entry = ContainerMetadataEntry(
            fingerprint=chunk.fingerprint,
            offset=self._used,
            length=chunk.length,
        )
        self._index_of[chunk.fingerprint] = len(self._metadata)
        self._metadata.append(entry)
        self._parts.append(self._payload_of(chunk))
        self._used += chunk.length
        return entry

    def append_many(self, chunks: List[ChunkRecord]) -> None:
        """Append a run of chunks known to fit, in one pass.

        Equivalent to per-chunk :meth:`append` calls (same metadata rows and
        contiguous layout) -- the batched append of ``store_chunks``.
        """
        if self.sealed:
            raise ContainerFullError(f"container {self.container_id} is sealed")
        total = sum(chunk.length for chunk in chunks)
        if total > self.free:
            raise ContainerFullError(
                f"container {self.container_id} has {self.free} bytes free, "
                f"batch needs {total}"
            )
        offset = self._used
        metadata = self._metadata
        parts = self._parts
        index_of = self._index_of
        payload_of = self._payload_of
        position = len(metadata)
        for chunk in chunks:
            length = chunk.length
            metadata.append(
                ContainerMetadataEntry(
                    fingerprint=chunk.fingerprint, offset=offset, length=length
                )
            )
            parts.append(payload_of(chunk))
            index_of[chunk.fingerprint] = position
            position += 1
            offset += length
        self._used = offset

    def seal(self) -> None:
        """Mark the container immutable (it is now a candidate for prefetching only)."""
        self.sealed = True

    def evict_payload(self, loader: Callable[["Container"], PayloadSection]) -> None:
        """Drop the in-RAM data section, reloading through ``loader`` on reads.

        Only sealed (immutable) containers may be evicted; the metadata
        section stays resident so fingerprint prefetching needs no payload I/O.
        The loader returns the contiguous data section as any
        :data:`PayloadSection` -- ``bytes``, or an ``mmap`` of the spill file
        whose windows the read path slices without a whole-file copy.
        """
        if not self.sealed:
            # A lifecycle violation, not a capacity condition: callers
            # handling ContainerFullError as "no room" must not catch this.
            raise StorageError(
                f"container {self.container_id} must be sealed before its "
                "payload can be evicted"
            )
        self._loader = loader
        self._parts = None

    def payload_bytes(self) -> PayloadSection:
        """The whole data section in its contiguous on-disk layout (loading it
        back if evicted).

        Resident containers return ``bytes``; an evicted one returns whatever
        its backend loader serves (possibly an ``mmap`` view of the spill
        file).  Either way the result slices to ``bytes``, which is the only
        operation the chunk read path performs."""
        # Read _parts once: a concurrent seal+evict may null it between a
        # check and a use, and the loader path below handles that correctly.
        parts = self._parts
        if parts is not None:
            return b"".join(parts)
        if self._loader is None:
            raise ContainerNotFoundError(
                f"container {self.container_id} payload was evicted with no loader"
            )
        return self._loader(self)

    def contains(self, fingerprint: bytes) -> bool:
        return fingerprint in self._index_of

    def read_chunk(self, fingerprint: bytes) -> Optional[bytes]:
        """Return the payload of a chunk stored in this container, or ``None``."""
        position = self._index_of.get(fingerprint)
        if position is None:
            return None
        parts = self._parts
        if parts is not None:
            return parts[position]
        entry = self._metadata[position]
        payload = self.payload_bytes()
        return payload[entry.offset:entry.offset + entry.length]

    def read_chunks(self, fingerprints: Sequence[bytes]) -> List[Optional[bytes]]:
        """Bulk :meth:`read_chunk`: payloads aligned with ``fingerprints``.

        The batched restore read path: an evicted data section is loaded
        through the backend exactly once for the whole batch instead of once
        per chunk, which is what turns spill restores from one file reload
        per chunk into one per container.
        """
        positions = [self._index_of.get(fingerprint) for fingerprint in fingerprints]
        parts = self._parts
        if parts is not None:
            return [
                parts[position] if position is not None else None
                for position in positions
            ]
        payload: Optional[PayloadSection] = None
        results: List[Optional[bytes]] = []
        for position in positions:
            if position is None:
                results.append(None)
                continue
            if payload is None:
                payload = self.payload_bytes()
            entry = self._metadata[position]
            results.append(payload[entry.offset:entry.offset + entry.length])
        return results

    def metadata_section(self) -> List[ContainerMetadataEntry]:
        """The metadata section (copied), what a prefetch reads from disk."""
        return list(self._metadata)

    def fingerprints(self) -> List[bytes]:
        """All chunk fingerprints stored in this container, in append order."""
        return [entry.fingerprint for entry in self._metadata]

    def metadata_size_bytes(self, entry_size: int = 40) -> int:
        """Approximate size of the metadata section (40 B per entry by default,
        the per-entry size the paper's RAM estimate assumes)."""
        return self.chunk_count * entry_size
