"""Fingerprint-level trace representation and workload materialisation.

The cluster simulator is trace-driven (as in the paper's Section 4.4): it
consumes streams of ``(fingerprint, length)`` records grouped by file and by
backup snapshot.  :func:`materialize_workload` converts any workload -- content
or trace -- into that representation once, so the same chunked trace can be
replayed against many routing schemes and cluster sizes without re-chunking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chunking.base import Chunker
from repro.chunking.fixed import StaticChunker
from repro.fingerprint.fingerprinter import Fingerprinter
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceChunk:
    """One chunk occurrence in a trace: its fingerprint and size."""

    fingerprint: bytes
    length: int


@dataclass
class TraceFile:
    """One file of a trace snapshot (path may be synthetic for trace workloads)."""

    path: str
    chunks: List[TraceChunk] = field(default_factory=list)

    @property
    def logical_size(self) -> int:
        return sum(chunk.length for chunk in self.chunks)

    @property
    def min_fingerprint(self) -> Optional[bytes]:
        """The file's minimum chunk fingerprint (Extreme Binning's feature)."""
        if not self.chunks:
            return None
        return min(
            (chunk.fingerprint for chunk in self.chunks),
            key=lambda fp: int.from_bytes(fp, "big"),
        )


@dataclass
class TraceSnapshot:
    """One backup generation of a materialised trace."""

    label: str
    files: List[TraceFile] = field(default_factory=list)
    has_file_metadata: bool = True

    @property
    def logical_bytes(self) -> int:
        return sum(file.logical_size for file in self.files)

    @property
    def chunk_count(self) -> int:
        return sum(len(file.chunks) for file in self.files)

    def all_chunks(self) -> List[TraceChunk]:
        """Every chunk of the snapshot in stream order (files concatenated)."""
        chunks: List[TraceChunk] = []
        for file in self.files:
            chunks.extend(file.chunks)
        return chunks


def materialize_workload(
    workload: Workload,
    chunker: Optional[Chunker] = None,
    fingerprint_algorithm: str = "sha1",
) -> List[TraceSnapshot]:
    """Convert a workload into chunk-level trace snapshots.

    Content workloads are chunked with ``chunker`` (default: 4 KB static
    chunking, the paper's configuration) and fingerprinted; trace workloads
    already carry chunk records and are converted directly.
    """
    chunker = chunker or StaticChunker(4096)
    fingerprinter = Fingerprinter(fingerprint_algorithm)
    snapshots: List[TraceSnapshot] = []
    for snapshot in workload.snapshots():
        trace_files: List[TraceFile] = []
        for file in snapshot.files:
            if file.chunks:
                trace_chunks = [
                    TraceChunk(fingerprint=record.fingerprint, length=record.length)
                    for record in file.chunks
                ]
            else:
                records = fingerprinter.fingerprint_stream(file.data, chunker, keep_data=False)
                trace_chunks = [
                    TraceChunk(fingerprint=record.fingerprint, length=record.length)
                    for record in records
                ]
            trace_files.append(TraceFile(path=file.path, chunks=trace_chunks))
        snapshots.append(
            TraceSnapshot(
                label=snapshot.label,
                files=trace_files,
                has_file_metadata=workload.has_file_metadata,
            )
        )
    return snapshots


def trace_statistics(snapshots: Sequence[TraceSnapshot]) -> dict:
    """Aggregate statistics of a materialised trace (Table 2 style)."""
    total_chunks = 0
    logical_bytes = 0
    unique_fingerprints = set()
    unique_bytes = 0
    for snapshot in snapshots:
        for file in snapshot.files:
            for chunk in file.chunks:
                total_chunks += 1
                logical_bytes += chunk.length
                if chunk.fingerprint not in unique_fingerprints:
                    unique_fingerprints.add(chunk.fingerprint)
                    unique_bytes += chunk.length
    deduplication_ratio = (logical_bytes / unique_bytes) if unique_bytes else 1.0
    return {
        "snapshots": len(snapshots),
        "files": sum(len(snapshot.files) for snapshot in snapshots),
        "total_chunks": total_chunks,
        "unique_chunks": len(unique_fingerprints),
        "logical_bytes": logical_bytes,
        "unique_bytes": unique_bytes,
        "deduplication_ratio": deduplication_ratio,
    }
