"""Fingerprint-level trace representation and workload materialisation.

The cluster simulator is trace-driven (as in the paper's Section 4.4): it
consumes streams of ``(fingerprint, length)`` records grouped by file and by
backup snapshot.  :func:`iter_trace_snapshots` converts any workload --
content or trace -- into that representation lazily, one generation at a
time, so traces far larger than memory can be replayed;
:func:`materialize_workload` is its buffering wrapper for callers that want
the whole trace as a list (e.g. to replay it against many routing schemes
without re-chunking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.chunking.base import Chunker
from repro.chunking.fixed import StaticChunker
from repro.fingerprint.fingerprinter import Fingerprinter
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceChunk:
    """One chunk occurrence in a trace: its fingerprint and size."""

    fingerprint: bytes
    length: int


@dataclass
class TraceFile:
    """One file of a trace snapshot (path may be synthetic for trace workloads)."""

    path: str
    chunks: List[TraceChunk] = field(default_factory=list)

    @property
    def logical_size(self) -> int:
        return sum(chunk.length for chunk in self.chunks)

    @property
    def min_fingerprint(self) -> Optional[bytes]:
        """The file's minimum chunk fingerprint (Extreme Binning's feature)."""
        if not self.chunks:
            return None
        return min(
            (chunk.fingerprint for chunk in self.chunks),
            key=lambda fp: int.from_bytes(fp, "big"),
        )


@dataclass
class TraceSnapshot:
    """One backup generation of a materialised trace."""

    label: str
    files: List[TraceFile] = field(default_factory=list)
    has_file_metadata: bool = True

    @property
    def logical_bytes(self) -> int:
        return sum(file.logical_size for file in self.files)

    @property
    def chunk_count(self) -> int:
        return sum(len(file.chunks) for file in self.files)

    def all_chunks(self) -> List[TraceChunk]:
        """Every chunk of the snapshot in stream order (files concatenated)."""
        chunks: List[TraceChunk] = []
        for file in self.files:
            chunks.extend(file.chunks)
        return chunks


def iter_trace_snapshots(
    workload: Workload,
    chunker: Optional[Chunker] = None,
    fingerprint_algorithm: str = "sha1",
    workers: Optional[int] = None,
) -> Iterator[TraceSnapshot]:
    """Lazily convert a workload into chunk-level trace snapshots.

    Content workloads are chunked with ``chunker`` (default: 4 KB static
    chunking, the paper's configuration) and fingerprinted; trace workloads
    already carry chunk records and are converted directly.  Snapshots are
    yielded one generation at a time, and content files are consumed through
    :meth:`~repro.workloads.base.WorkloadFile.iter_blocks`, so no file
    payload -- let alone a whole trace -- is ever buffered; only the
    (payload-free) chunk metadata of the current snapshot is held.

    With ``workers > 1`` the chunk+fingerprint work of content files fans out
    across that many parallel ingest lanes (files surface in order, so the
    trace is identical to the serial one); trace workloads have no such work
    and are unaffected.
    """
    chunker = chunker or StaticChunker(4096)
    if workers is not None and workers > 1:
        return _iter_trace_snapshots_parallel(
            workload, chunker, fingerprint_algorithm, workers
        )
    return _iter_trace_snapshots_serial(workload, chunker, fingerprint_algorithm)


def _iter_trace_snapshots_serial(
    workload: Workload, chunker: Chunker, fingerprint_algorithm: str
) -> Iterator[TraceSnapshot]:
    fingerprinter = Fingerprinter(fingerprint_algorithm)
    for snapshot in workload.snapshots():
        trace_files: List[TraceFile] = []
        for file in snapshot.files:
            if file.chunks:
                trace_chunks = [
                    TraceChunk(fingerprint=record.fingerprint, length=record.length)
                    for record in file.chunks
                ]
            else:
                trace_chunks = [
                    TraceChunk(fingerprint=record.fingerprint, length=record.length)
                    for record in fingerprinter.fingerprint_blocks(
                        file.iter_blocks(), chunker, keep_data=False
                    )
                ]
            trace_files.append(TraceFile(path=file.path, chunks=trace_chunks))
        yield TraceSnapshot(
            label=snapshot.label,
            files=trace_files,
            has_file_metadata=workload.has_file_metadata,
        )


def _iter_trace_snapshots_parallel(
    workload: Workload, chunker: Chunker, fingerprint_algorithm: str, workers: int
) -> Iterator[TraceSnapshot]:
    """Engine-backed trace generation: content files chunked across lanes."""
    from repro.core.partitioner import PartitionerConfig, StreamPartitioner
    from repro.core.superchunk import DEFAULT_SUPERCHUNK_SIZE
    from repro.parallel.engine import ParallelIngestEngine

    config = PartitionerConfig(
        chunker=chunker,
        superchunk_size=max(DEFAULT_SUPERCHUNK_SIZE, chunker.average_chunk_size),
        fingerprint_algorithm=fingerprint_algorithm,
        keep_chunk_data=False,
    )
    engine = ParallelIngestEngine(workers=workers)
    for snapshot in workload.snapshots():
        files = list(snapshot.files)
        pairs = engine.iter_file_records(
            ((file.path, file.iter_blocks()) for file in files if not file.chunks),
            lambda: StreamPartitioner(config),
        )
        try:
            trace_files: List[TraceFile] = []
            for file in files:
                if file.chunks:
                    records: Iterable = file.chunks
                else:
                    _path, records = next(pairs)
                trace_files.append(
                    TraceFile(
                        path=file.path,
                        chunks=[
                            TraceChunk(fingerprint=record.fingerprint, length=record.length)
                            for record in records
                        ],
                    )
                )
        finally:
            pairs.close()
        yield TraceSnapshot(
            label=snapshot.label,
            files=trace_files,
            has_file_metadata=workload.has_file_metadata,
        )


def materialize_workload(
    workload: Workload,
    chunker: Optional[Chunker] = None,
    fingerprint_algorithm: str = "sha1",
    workers: Optional[int] = None,
) -> List[TraceSnapshot]:
    """Convert a workload into a fully buffered list of trace snapshots.

    Thin wrapper over :func:`iter_trace_snapshots` for callers that replay
    the same trace repeatedly (e.g. scheme x cluster-size sweeps).
    """
    return list(
        iter_trace_snapshots(
            workload,
            chunker=chunker,
            fingerprint_algorithm=fingerprint_algorithm,
            workers=workers,
        )
    )


def trace_statistics(snapshots: Iterable[TraceSnapshot]) -> dict:
    """Aggregate statistics of a trace (Table 2 style).

    Accepts any snapshot iterable -- a materialised list or a lazy
    :func:`iter_trace_snapshots` generator -- and consumes it in a single
    pass, so statistics over traces larger than memory cost only the unique
    fingerprint set.
    """
    num_snapshots = 0
    num_files = 0
    total_chunks = 0
    logical_bytes = 0
    unique_fingerprints = set()
    unique_bytes = 0
    for snapshot in snapshots:
        num_snapshots += 1
        for file in snapshot.files:
            num_files += 1
            for chunk in file.chunks:
                total_chunks += 1
                logical_bytes += chunk.length
                if chunk.fingerprint not in unique_fingerprints:
                    unique_fingerprints.add(chunk.fingerprint)
                    unique_bytes += chunk.length
    deduplication_ratio = (logical_bytes / unique_bytes) if unique_bytes else 1.0
    return {
        "snapshots": num_snapshots,
        "files": num_files,
        "total_chunks": total_chunks,
        "unique_chunks": len(unique_fingerprints),
        "logical_bytes": logical_bytes,
        "unique_bytes": unique_bytes,
        "deduplication_ratio": deduplication_ratio,
    }
