"""Workload abstractions.

A *workload* is a sequence of backup snapshots (generations); each snapshot is
a set of files.  Two families exist:

* :class:`ContentWorkload` -- snapshots carry real file payloads (bytes), so
  any chunker / chunk size can be applied to them.  The Linux and VM
  generators are content workloads.
* :class:`TraceWorkload` -- snapshots carry pre-chunked fingerprint records
  with no payload and (as with the FIU traces) no meaningful file boundaries.
  The Mail and Web generators are trace workloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, List

from repro.fingerprint.fingerprinter import ChunkRecord

#: Block size used when a workload file is consumed as a block stream.
DEFAULT_STREAM_BLOCK_SIZE = 256 * 1024


@dataclass
class WorkloadFile:
    """One file of one backup snapshot.

    Exactly one of ``data`` (content workloads) or ``chunks`` (trace
    workloads) is populated.
    """

    path: str
    data: bytes = b""
    chunks: List[ChunkRecord] = field(default_factory=list)

    @property
    def size(self) -> int:
        if self.chunks:
            return sum(chunk.length for chunk in self.chunks)
        return len(self.data)

    def iter_blocks(self, block_size: int = DEFAULT_STREAM_BLOCK_SIZE) -> Iterator[bytes]:
        """Yield this file's payload as fixed-size blocks (streaming source).

        Feeds :meth:`repro.chunking.base.Chunker.chunk_stream` and
        :meth:`repro.fingerprint.fingerprinter.Fingerprinter.fingerprint_blocks`
        so backups need not hold whole files as one buffer.  Trace files have
        no payload and yield nothing.
        """
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        for offset in range(0, len(self.data), block_size):
            yield self.data[offset:offset + block_size]


@dataclass
class BackupSnapshot:
    """One backup generation: a label plus the files captured in it."""

    label: str
    files: List[WorkloadFile] = field(default_factory=list)

    @property
    def logical_bytes(self) -> int:
        return sum(file.size for file in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


class Workload(ABC):
    """Base class for every workload generator."""

    #: Human-readable workload name (used in reports, mirrors Table 2 rows).
    name: str = "workload"

    #: Whether snapshots carry file boundaries usable by file-level routing
    #: (Extreme Binning).  The FIU-style traces do not.
    has_file_metadata: bool = True

    @abstractmethod
    def snapshots(self) -> Iterator[BackupSnapshot]:
        """Yield the backup snapshots (generations) of this workload in order."""

    def total_logical_bytes(self) -> int:
        """Total bytes across all snapshots (materialises the workload once)."""
        return sum(snapshot.logical_bytes for snapshot in self.snapshots())

    def describe(self) -> dict:
        """Workload characteristics row (the shape of Table 2)."""
        snapshots = list(self.snapshots())
        return {
            "name": self.name,
            "snapshots": len(snapshots),
            "files": sum(snapshot.file_count for snapshot in snapshots),
            "logical_bytes": sum(snapshot.logical_bytes for snapshot in snapshots),
            "has_file_metadata": self.has_file_metadata,
        }


class ContentWorkload(Workload):
    """A workload whose files carry payload bytes."""

    has_file_metadata = True


class TraceWorkload(Workload):
    """A workload whose files carry pre-chunked fingerprint records only."""

    has_file_metadata = False
