"""Workload abstractions.

A *workload* is a sequence of backup snapshots (generations); each snapshot is
a set of files.  Two families exist:

* :class:`ContentWorkload` -- snapshots carry real file payloads, so any
  chunker / chunk size can be applied to them.  The Linux and VM generators
  are content workloads.
* :class:`TraceWorkload` -- snapshots carry pre-chunked fingerprint records
  with no payload and (as with the FIU traces) no meaningful file boundaries.
  The Mail and Web generators are trace workloads.

Content files carry their payload either eagerly (``data``, a byte buffer) or
lazily (``source``, a re-iterable factory of byte blocks).  The lazy form is
what lets a backup flow through the whole ingest path -- workload ->
partitioner -> client -> node -- as a bounded-memory block stream: consumers
that call :meth:`WorkloadFile.iter_blocks` never see more than one block at a
time, and the generator never holds a whole snapshot of payloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.fingerprint.fingerprinter import ChunkRecord
from repro.errors import ValidationError

#: Block size used when a workload file is consumed as a block stream.
DEFAULT_STREAM_BLOCK_SIZE = 256 * 1024

#: A re-iterable factory of payload blocks: each call returns a fresh
#: iterator over the file's bytes, so the payload can be consumed (and sized)
#: any number of times without ever being held as one buffer.
PayloadSource = Callable[[], Iterable[bytes]]


class WorkloadFile:
    """One file of one backup snapshot.

    Exactly one of ``data`` (eager content), ``source`` (lazy content) or
    ``chunks`` (trace workloads) is populated.

    Parameters
    ----------
    path:
        File path within the snapshot.
    data:
        Eager payload buffer (small files, tests).
    chunks:
        Pre-chunked fingerprint records (trace workloads; no payload).
    source:
        Re-iterable payload factory; each call must yield the same byte
        stream.  Reading :attr:`data` on a source-backed file materialises
        the payload on demand -- streaming consumers use
        :meth:`iter_blocks` instead and stay bounded.
    size_hint:
        Exact payload size in bytes when the generator knows it up front;
        lets :attr:`size` (and snapshot/workload accounting) avoid streaming
        the source just to count bytes.
    """

    __slots__ = ("path", "chunks", "source", "size_hint", "_data")

    def __init__(
        self,
        path: str,
        data: bytes = b"",
        chunks: Optional[List[ChunkRecord]] = None,
        source: Optional[PayloadSource] = None,
        size_hint: Optional[int] = None,
    ):
        if source is not None and data:
            raise ValidationError("a WorkloadFile carries either data or a source, not both")
        if chunks and (source is not None or data):
            raise ValidationError("a WorkloadFile carries either chunks or a payload, not both")
        self.path = path
        self.chunks: List[ChunkRecord] = list(chunks) if chunks else []
        self.source = source
        self.size_hint = size_hint
        self._data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "chunks" if self.chunks else ("source" if self.source else "data")
        # Never stream a hint-less source just to render a repr.
        if self.source is not None and self.size_hint is None:
            size = "lazy"
        else:
            size = self.size
        return f"WorkloadFile(path={self.path!r}, {kind}, size={size})"

    @property
    def data(self) -> bytes:
        """The whole payload as one buffer (materialises lazy sources)."""
        if self.source is not None:
            return b"".join(self.source())  # streaming-ok: .data is the documented whole-buffer escape hatch
        return self._data

    @property
    def size(self) -> int:
        if self.chunks:
            return sum(chunk.length for chunk in self.chunks)
        if self.source is not None:
            if self.size_hint is None:
                # Counting a hint-less source streams the whole payload once;
                # cache the result so repeated accounting (describe(),
                # snapshot.logical_bytes, ...) does not regenerate it.
                self.size_hint = sum(len(block) for block in self.source())
            return self.size_hint
        return len(self._data)

    def iter_blocks(self, block_size: int = DEFAULT_STREAM_BLOCK_SIZE) -> Iterator[bytes]:
        """Yield this file's payload as blocks of at most ``block_size`` bytes.

        Feeds :meth:`repro.chunking.base.Chunker.chunk_stream` and
        :meth:`repro.fingerprint.fingerprinter.Fingerprinter.fingerprint_blocks`
        so backups need not hold whole files as one buffer.  Source-backed
        files stream straight from the source (re-sliced only where a source
        block exceeds ``block_size``); trace files have no payload and yield
        nothing.
        """
        if block_size < 1:
            raise ValidationError("block_size must be >= 1")
        if self.source is not None:
            for block in self.source():
                if len(block) <= block_size:
                    if block:
                        yield bytes(block)
                else:
                    for offset in range(0, len(block), block_size):
                        yield bytes(block[offset:offset + block_size])
            return
        for offset in range(0, len(self._data), block_size):
            yield self._data[offset:offset + block_size]


@dataclass
class BackupSnapshot:
    """One backup generation: a label plus the files captured in it."""

    label: str
    files: List[WorkloadFile] = field(default_factory=list)

    @property
    def logical_bytes(self) -> int:
        return sum(file.size for file in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


class Workload(ABC):
    """Base class for every workload generator."""

    #: Human-readable workload name (used in reports, mirrors Table 2 rows).
    name: str = "workload"

    #: Whether snapshots carry file boundaries usable by file-level routing
    #: (Extreme Binning).  The FIU-style traces do not.
    has_file_metadata: bool = True

    @abstractmethod
    def snapshots(self) -> Iterator[BackupSnapshot]:
        """Yield the backup snapshots (generations) of this workload in order."""

    def total_logical_bytes(self) -> int:
        """Total bytes across all snapshots (one streaming pass, no buffering)."""
        return sum(snapshot.logical_bytes for snapshot in self.snapshots())

    def describe(self) -> dict:
        """Workload characteristics row (the shape of Table 2).

        Single pass: snapshots are consumed one at a time and never held as a
        list, so describing a workload costs O(one snapshot) memory even for
        arbitrarily long generation sequences.
        """
        num_snapshots = 0
        num_files = 0
        logical_bytes = 0
        for snapshot in self.snapshots():
            num_snapshots += 1
            num_files += snapshot.file_count
            logical_bytes += snapshot.logical_bytes
        return {
            "name": self.name,
            "snapshots": num_snapshots,
            "files": num_files,
            "logical_bytes": logical_bytes,
            "has_file_metadata": self.has_file_metadata,
        }


class ContentWorkload(Workload):
    """A workload whose files carry payload bytes."""

    has_file_metadata = True


class TraceWorkload(Workload):
    """A workload whose files carry pre-chunked fingerprint records only."""

    has_file_metadata = False
