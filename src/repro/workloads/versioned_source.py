"""A Linux-kernel-like versioned source tree workload.

Stands in for the paper's "Linux" dataset (kernel sources 1.0 through 3.3.6,
160 GB, dedup ratio ~8).  The properties that matter to cluster deduplication
and that this generator preserves are:

* many small files (kilobytes) organised in a directory tree,
* consecutive versions share most files unchanged,
* a minority of files receive localised edits per version,
* a few files are added and removed per version.

Absolute volume is scaled down so experiments run in seconds of pure Python.

The tree evolves as pure metadata: for every live path only its cumulative
*edit count* is tracked, and file payloads are lazy
:class:`~repro.workloads.base.WorkloadFile` sources that regenerate the
content on demand from a per-path RNG stream (base content plus ``edits``
applications of :meth:`SyntheticDataGenerator.evolve`).  Emitting a snapshot
therefore never materialises the tree's bytes; consumers stream one file at a
time.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import BackupSnapshot, ContentWorkload, WorkloadFile
from repro.workloads.synthetic import SyntheticDataGenerator

_DIRECTORIES = (
    "kernel", "mm", "fs", "net", "drivers", "arch", "include", "lib",
    "crypto", "sound", "block", "ipc",
)


class VersionedSourceWorkload(ContentWorkload):
    """Synthetic versioned source tree (Linux-kernel-like).

    Parameters
    ----------
    num_versions:
        Number of released versions to back up (each is one snapshot).
    files_per_version:
        Number of source files in the tree.
    mean_file_size:
        Average file size in bytes (source files are small; default 8 KB).
    change_fraction:
        Fraction of files that receive edits between consecutive versions.
    churn_fraction:
        Fraction of files added/removed between consecutive versions.
    seed:
        Determinism seed.
    """

    name = "linux"

    def __init__(
        self,
        num_versions: int = 8,
        files_per_version: int = 120,
        mean_file_size: int = 8 * 1024,
        change_fraction: float = 0.15,
        churn_fraction: float = 0.03,
        seed: int = 26,
    ):
        if num_versions < 1:
            raise WorkloadError("num_versions must be >= 1")
        if files_per_version < 1:
            raise WorkloadError("files_per_version must be >= 1")
        if not 0.0 <= change_fraction <= 1.0 or not 0.0 <= churn_fraction <= 1.0:
            raise WorkloadError("fractions must be within [0, 1]")
        self.num_versions = num_versions
        self.files_per_version = files_per_version
        self.mean_file_size = mean_file_size
        self.change_fraction = change_fraction
        self.churn_fraction = churn_fraction
        self.seed = seed

    # ------------------------------------------------------------------ #
    # lazy per-file content
    # ------------------------------------------------------------------ #

    def _file_payload(self, path: str, edits: int) -> bytes:
        """Content of ``path`` after ``edits`` localised edits.

        Each path owns an independent RNG stream, so any edit level of any
        file is reproducible without the rest of the tree.
        """
        generator = SyntheticDataGenerator(f"{self.seed}:{path}")
        # Source files have a skewed but small size distribution: mostly
        # around the mean, a few several times larger.
        size = generator.randint(self.mean_file_size // 4, self.mean_file_size * 2)
        if generator.random() < 0.05:
            size *= 4
        data = generator.unique_bytes(size)
        for _ in range(edits):
            data = generator.evolve(data, change_fraction=0.08, edit_size=128)
        return data

    def _payload_source(self, path: str, edits: int):
        def blocks() -> Iterator[bytes]:
            yield self._file_payload(path, edits)
        return blocks

    # ------------------------------------------------------------------ #
    # metadata-level tree evolution
    # ------------------------------------------------------------------ #

    def _initial_tree(self) -> Dict[str, int]:
        tree: Dict[str, int] = {}
        for index in range(self.files_per_version):
            directory = _DIRECTORIES[index % len(_DIRECTORIES)]
            tree[f"{directory}/file_{index:05d}.c"] = 0
        return tree

    def _evolve_tree(self, tree: Dict[str, int], rng: random.Random, version: int) -> Dict[str, int]:
        evolved = dict(tree)
        paths = sorted(evolved.keys())
        # Localised edits to a fraction of files.
        num_changed = max(1, int(len(paths) * self.change_fraction))
        for _ in range(num_changed):
            path = rng.choice(paths)
            evolved[path] += 1
        # Remove a few files.
        num_removed = int(len(paths) * self.churn_fraction)
        for _ in range(num_removed):
            path = rng.choice(sorted(evolved.keys()))
            evolved.pop(path, None)
        # Add a few new files.
        num_added = max(num_removed, int(len(paths) * self.churn_fraction))
        for index in range(num_added):
            directory = _DIRECTORIES[rng.randint(0, len(_DIRECTORIES) - 1)]
            evolved[f"{directory}/new_v{version:03d}_{index:04d}.c"] = 0
        return evolved

    def snapshots(self) -> Iterator[BackupSnapshot]:
        rng = random.Random(self.seed)
        tree = self._initial_tree()
        for version in range(self.num_versions):
            if version > 0:
                tree = self._evolve_tree(tree, rng, version)
            files: List[WorkloadFile] = [
                WorkloadFile(path=path, source=self._payload_source(path, edits))
                for path, edits in sorted(tree.items())
            ]
            yield BackupSnapshot(label=f"v{version + 1:03d}", files=files)
