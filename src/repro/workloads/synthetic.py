"""Deterministic synthetic data generation and a generic tunable workload.

:class:`SyntheticDataGenerator` produces reproducible pseudo-random byte
buffers and applies version-to-version mutations (in-place edits, insertions,
deletions), which is the primitive the Linux- and VM-like generators build on.
:class:`SyntheticWorkload` is a directly usable workload with an explicit
target redundancy level, handy for tests and the quickstart example.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import (
    DEFAULT_STREAM_BLOCK_SIZE,
    BackupSnapshot,
    ContentWorkload,
    WorkloadFile,
)


class SyntheticDataGenerator:
    """Seeded generator of unique buffers and realistic mutations.

    ``seed`` may be any value :class:`random.Random` accepts (int or str);
    string seeds let workload generators derive independent per-file streams
    such as ``f"{seed}:{path}"``.
    """

    def __init__(self, seed: "int | str" = 2012):
        self._rng = random.Random(seed)

    def unique_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes never produced before by this
        generator (with overwhelming probability)."""
        if length < 0:
            raise WorkloadError("length must be non-negative")
        if length == 0:
            return b""
        return self._rng.randbytes(length)

    def unique_byte_blocks(
        self, length: int, block_size: int = DEFAULT_STREAM_BLOCK_SIZE
    ) -> Iterator[bytes]:
        """Yield ``length`` pseudo-random bytes as a stream of blocks.

        The streaming counterpart of :meth:`unique_bytes` for feeding
        ``chunk_stream``-based pipelines: no buffer of more than
        ``block_size`` bytes is ever materialised by the generator.
        """
        if length < 0:
            raise WorkloadError("length must be non-negative")
        if block_size < 1:
            raise WorkloadError("block_size must be >= 1")
        remaining = length
        while remaining > 0:
            block = self._rng.randbytes(min(block_size, remaining))
            remaining -= len(block)
            yield block

    def redundant_bytes(self, length: int, block: bytes) -> bytes:
        """Return ``length`` bytes made of repetitions of ``block`` (fully redundant)."""
        if not block:
            raise WorkloadError("block must be non-empty")
        repeats = length // len(block) + 1
        return (block * repeats)[:length]

    def choice(self, options):
        return self._rng.choice(options)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    def mutate_overwrite(self, data: bytes, num_edits: int, edit_size: int) -> bytes:
        """Overwrite ``num_edits`` spans of ``edit_size`` bytes at random offsets."""
        if not data or num_edits <= 0:
            return data
        buffer = bytearray(data)
        for _ in range(num_edits):
            if len(buffer) <= edit_size:
                offset = 0
                size = len(buffer)
            else:
                offset = self._rng.randrange(0, len(buffer) - edit_size)
                size = edit_size
            buffer[offset:offset + size] = self.unique_bytes(size)
        return bytes(buffer)

    def mutate_insert(self, data: bytes, num_inserts: int, insert_size: int) -> bytes:
        """Insert ``num_inserts`` new spans at random offsets (shifts content)."""
        if num_inserts <= 0:
            return data
        buffer = bytes(data)
        for _ in range(num_inserts):
            offset = self._rng.randrange(0, len(buffer) + 1) if buffer else 0
            buffer = buffer[:offset] + self.unique_bytes(insert_size) + buffer[offset:]
        return buffer

    def mutate_delete(self, data: bytes, num_deletes: int, delete_size: int) -> bytes:
        """Delete ``num_deletes`` spans at random offsets."""
        buffer = bytes(data)
        for _ in range(num_deletes):
            if len(buffer) <= delete_size:
                break
            offset = self._rng.randrange(0, len(buffer) - delete_size)
            buffer = buffer[:offset] + buffer[offset + delete_size:]
        return buffer

    def evolve(self, data: bytes, change_fraction: float, edit_size: int = 256) -> bytes:
        """Produce the "next version" of ``data`` with roughly
        ``change_fraction`` of its bytes affected by edits."""
        if not 0.0 <= change_fraction <= 1.0:
            raise WorkloadError("change_fraction must be within [0, 1]")
        if not data or change_fraction == 0.0:
            return data
        num_edits = max(1, int(len(data) * change_fraction / max(edit_size, 1)))
        mutated = self.mutate_overwrite(data, num_edits, edit_size)
        # A small amount of insertion/deletion exercises shift-sensitivity of
        # fixed-size chunking versus CDC.
        if self._rng.random() < 0.5:
            mutated = self.mutate_insert(mutated, 1, edit_size)
        else:
            mutated = self.mutate_delete(mutated, 1, edit_size)
        return mutated


class SyntheticWorkload(ContentWorkload):
    """A generic workload with an explicit number of generations and change rate.

    Generation 0 is fresh data; each later generation is the previous one with
    ``change_fraction`` of each file's bytes modified, which makes the ideal
    deduplication ratio approximately ``num_generations`` for small change
    fractions.

    Every file evolves on its own deterministic RNG stream (derived from the
    workload seed and the file index), so payloads are emitted as lazy
    :class:`~repro.workloads.base.WorkloadFile` sources: a file's bytes are
    regenerated on demand when it is consumed, and the generator never holds
    a whole generation -- or even one file -- between snapshots.

    Parameters
    ----------
    num_generations:
        Number of backup snapshots.
    files_per_generation:
        Files in each snapshot.
    file_size:
        Size of each file in bytes (generation 0; later generations drift
        slightly through insert/delete mutations).
    change_fraction:
        Fraction of each file modified between consecutive generations.
    seed:
        Seed for deterministic generation.
    """

    name = "synthetic"

    def __init__(
        self,
        num_generations: int = 3,
        files_per_generation: int = 8,
        file_size: int = 64 * 1024,
        change_fraction: float = 0.05,
        seed: int = 2012,
    ):
        if num_generations < 1:
            raise WorkloadError("num_generations must be >= 1")
        if files_per_generation < 1:
            raise WorkloadError("files_per_generation must be >= 1")
        if file_size < 1:
            raise WorkloadError("file_size must be >= 1")
        self.num_generations = num_generations
        self.files_per_generation = files_per_generation
        self.file_size = file_size
        self.change_fraction = change_fraction
        self.seed = seed

    def _file_payload(self, index: int, generation: int) -> bytes:
        """Version ``generation`` of file ``index``, regenerated from scratch.

        The file's dedicated RNG stream replays its whole evolution chain, so
        any version is reproducible without storing any earlier one.
        """
        generator = SyntheticDataGenerator(f"{self.seed}:file:{index}")
        data = generator.unique_bytes(self.file_size)
        for _ in range(generation):
            data = generator.evolve(data, self.change_fraction)
        return data

    def _payload_source(self, index: int, generation: int):
        def blocks() -> Iterator[bytes]:
            yield self._file_payload(index, generation)
        return blocks

    def snapshots(self) -> Iterator[BackupSnapshot]:
        for generation in range(self.num_generations):
            files: List[WorkloadFile] = [
                WorkloadFile(
                    path=f"gen{generation:03d}/file{index:04d}.bin",
                    source=self._payload_source(index, generation),
                )
                for index in range(self.files_per_generation)
            ]
            yield BackupSnapshot(label=f"generation-{generation:03d}", files=files)
