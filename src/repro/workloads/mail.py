"""A mail-server-trace-like workload (fingerprint-only, high redundancy).

Stands in for the FIU mail-server trace of the paper (526 GB, dedup ratio
~10.5 with 4 KB static chunks, no file-level information).  The generator
emits pre-fingerprinted chunk records directly:

* no usable file metadata (``has_file_metadata = False``), so file-granularity
  routing (Extreme Binning) cannot run on it -- matching the paper, which
  omits Extreme Binning on the Mail/Web traces;
* a target deduplication ratio around 10.5, achieved by re-emitting previously
  seen data with the appropriate probability;
* backup-stream locality: redundancy appears as *contiguous runs* of chunks
  copied from earlier parts of the stream (mailboxes re-read during daily
  fulls), not as isolated duplicate chunks.  This is the locality property
  that super-chunk-granularity routing relies on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.fingerprint.fingerprinter import ChunkRecord
from repro.workloads.base import BackupSnapshot, TraceWorkload, WorkloadFile


class MailWorkload(TraceWorkload):
    """Synthetic fingerprint-only mail-server backup trace.

    The stream is generated segment by segment.  A segment is either a run of
    brand-new chunks (probability ``1 / target_dedup_ratio``) or a contiguous
    run copied from a random earlier position of the stream, biased toward
    recent history to model temporal locality.

    Parameters
    ----------
    num_days:
        Number of daily snapshots in the trace.
    chunks_per_day:
        Chunk write records per day.
    chunk_size:
        Logical size accounted per chunk (4 KB, static chunking).
    target_dedup_ratio:
        Desired ratio of logical to unique data (paper: about 10.5).
    mean_segment_chunks:
        Average run length in chunks (controls how much super-chunk-level
        resemblance the stream exhibits).
    recent_bias:
        Probability that a duplicate run is copied from the most recent
        ``chunks_per_day`` chunks rather than from anywhere in history.
    seed:
        Determinism seed.
    """

    name = "mail"
    has_file_metadata = False

    def __init__(
        self,
        num_days: int = 6,
        chunks_per_day: int = 6000,
        chunk_size: int = 4096,
        target_dedup_ratio: float = 10.5,
        mean_segment_chunks: int = 96,
        recent_bias: float = 0.7,
        seed: int = 526,
    ):
        if num_days < 1 or chunks_per_day < 1:
            raise WorkloadError("num_days and chunks_per_day must be >= 1")
        if target_dedup_ratio < 1.0:
            raise WorkloadError("target_dedup_ratio must be >= 1.0")
        if mean_segment_chunks < 1:
            raise WorkloadError("mean_segment_chunks must be >= 1")
        if not 0.0 <= recent_bias <= 1.0:
            raise WorkloadError("recent_bias must be within [0, 1]")
        self.num_days = num_days
        self.chunks_per_day = chunks_per_day
        self.chunk_size = chunk_size
        self.target_dedup_ratio = target_dedup_ratio
        self.mean_segment_chunks = mean_segment_chunks
        self.recent_bias = recent_bias
        self.seed = seed

    def _make_fingerprint(self, counter: int) -> bytes:
        return hashlib.sha1(f"{self.name}-{self.seed}-{counter}".encode()).digest()

    def _segment_length(self, rng: random.Random) -> int:
        low = max(1, self.mean_segment_chunks // 2)
        high = self.mean_segment_chunks * 3 // 2
        return rng.randint(low, max(low, high))

    def snapshots(self) -> Iterator[BackupSnapshot]:
        rng = random.Random(self.seed)
        unique_probability = 1.0 / self.target_dedup_ratio
        history: List[bytes] = []
        counter = 0
        for day in range(self.num_days):
            records: List[ChunkRecord] = []
            while len(records) < self.chunks_per_day:
                length = min(self._segment_length(rng), self.chunks_per_day - len(records))
                if not history or rng.random() < unique_probability:
                    # A run of new, never-seen chunks.
                    segment = [self._make_fingerprint(counter + i) for i in range(length)]
                    counter += length
                else:
                    # A contiguous run copied from earlier in the stream.
                    if rng.random() < self.recent_bias and len(history) > self.chunks_per_day:
                        window_start = len(history) - self.chunks_per_day
                    else:
                        window_start = 0
                    max_start = max(window_start, len(history) - length)
                    start = rng.randint(window_start, max_start) if max_start > window_start else window_start
                    segment = history[start:start + length]
                    if not segment:
                        continue
                for position, fingerprint in enumerate(segment):
                    records.append(
                        ChunkRecord(
                            fingerprint=fingerprint,
                            length=self.chunk_size,
                            offset=(len(records)) * self.chunk_size,
                            data=None,
                        )
                    )
                history.extend(segment)
            stream = WorkloadFile(path=f"mail-day-{day:03d}", chunks=records)
            yield BackupSnapshot(label=f"day-{day:03d}", files=[stream])
