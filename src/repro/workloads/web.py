"""A web-server-trace-like workload (fingerprint-only, low redundancy).

Stands in for the FIU web-server trace of the paper (43 GB, dedup ratio ~1.9
with 4 KB static chunks, no file-level information).  Compared with the mail
trace, the web trace is smaller, has far less redundancy and weaker locality:
most of its content is unique, with occasional re-writes of popular objects.

Like :class:`~repro.workloads.mail.MailWorkload`, redundancy is emitted as
contiguous runs (whole objects re-served/re-saved) so the stream has
realistic backup locality, just much less of it.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.fingerprint.fingerprinter import ChunkRecord
from repro.workloads.base import BackupSnapshot, TraceWorkload, WorkloadFile


class WebWorkload(TraceWorkload):
    """Synthetic fingerprint-only web-server backup trace.

    Parameters
    ----------
    num_days:
        Number of daily snapshots in the trace.
    chunks_per_day:
        Chunk write records per day.
    chunk_size:
        Logical size accounted per chunk (4 KB, static chunking).
    target_dedup_ratio:
        Desired ratio of logical to unique data (paper: about 1.9).
    mean_segment_chunks:
        Average run length in chunks (web objects are smaller than mailboxes,
        so the default run is shorter than the mail workload's).
    seed:
        Determinism seed.
    """

    name = "web"
    has_file_metadata = False

    def __init__(
        self,
        num_days: int = 4,
        chunks_per_day: int = 3000,
        chunk_size: int = 4096,
        target_dedup_ratio: float = 1.9,
        mean_segment_chunks: int = 24,
        seed: int = 43,
    ):
        if num_days < 1 or chunks_per_day < 1:
            raise WorkloadError("num_days and chunks_per_day must be >= 1")
        if target_dedup_ratio < 1.0:
            raise WorkloadError("target_dedup_ratio must be >= 1.0")
        if mean_segment_chunks < 1:
            raise WorkloadError("mean_segment_chunks must be >= 1")
        self.num_days = num_days
        self.chunks_per_day = chunks_per_day
        self.chunk_size = chunk_size
        self.target_dedup_ratio = target_dedup_ratio
        self.mean_segment_chunks = mean_segment_chunks
        self.seed = seed

    def _make_fingerprint(self, counter: int) -> bytes:
        return hashlib.sha1(f"{self.name}-{self.seed}-{counter}".encode()).digest()

    def _segment_length(self, rng: random.Random) -> int:
        low = max(1, self.mean_segment_chunks // 2)
        high = self.mean_segment_chunks * 3 // 2
        return rng.randint(low, max(low, high))

    def snapshots(self) -> Iterator[BackupSnapshot]:
        rng = random.Random(self.seed)
        unique_probability = 1.0 / self.target_dedup_ratio
        history: List[bytes] = []
        counter = 0
        for day in range(self.num_days):
            records: List[ChunkRecord] = []
            while len(records) < self.chunks_per_day:
                length = min(self._segment_length(rng), self.chunks_per_day - len(records))
                if not history or rng.random() < unique_probability:
                    segment = [self._make_fingerprint(counter + i) for i in range(length)]
                    counter += length
                else:
                    max_start = max(0, len(history) - length)
                    start = rng.randint(0, max_start) if max_start > 0 else 0
                    segment = history[start:start + length]
                    if not segment:
                        continue
                for fingerprint in segment:
                    records.append(
                        ChunkRecord(
                            fingerprint=fingerprint,
                            length=self.chunk_size,
                            offset=len(records) * self.chunk_size,
                            data=None,
                        )
                    )
                history.extend(segment)
            stream = WorkloadFile(path=f"web-day-{day:03d}", chunks=records)
            yield BackupSnapshot(label=f"day-{day:03d}", files=[stream])
