"""Synthetic backup workloads standing in for the paper's datasets.

The paper evaluates on two real datasets and two traces (Table 2):

* **Linux** -- kernel source trees, versions 1.0 to 3.3.6 (many small files,
  high inter-version redundancy).  Reproduced by
  :class:`~repro.workloads.versioned_source.VersionedSourceWorkload`.
* **VM** -- monthly full backups of 8 virtual machines (few very large files,
  skewed size distribution).  Reproduced by
  :class:`~repro.workloads.vm_images.VMBackupWorkload`.
* **Mail** / **Web** -- FIU fingerprint-only I/O traces (no file metadata).
  Reproduced by :class:`~repro.workloads.mail.MailWorkload` and
  :class:`~repro.workloads.web.WebWorkload`.

Every generator is deterministic given its seed, sized for laptop-scale runs,
and documents which property of the original dataset it preserves (see
``DESIGN.md`` section 2 for the substitution rationale).
"""

from repro.workloads.base import (
    BackupSnapshot,
    ContentWorkload,
    TraceWorkload,
    Workload,
    WorkloadFile,
)
from repro.workloads.trace import (
    TraceChunk,
    TraceFile,
    TraceSnapshot,
    iter_trace_snapshots,
    materialize_workload,
)
from repro.workloads.synthetic import SyntheticDataGenerator, SyntheticWorkload
from repro.workloads.versioned_source import VersionedSourceWorkload
from repro.workloads.vm_images import VMBackupWorkload
from repro.workloads.mail import MailWorkload
from repro.workloads.web import WebWorkload

STANDARD_WORKLOADS = {
    "linux": VersionedSourceWorkload,
    "vm": VMBackupWorkload,
    "mail": MailWorkload,
    "web": WebWorkload,
}

__all__ = [
    "Workload",
    "ContentWorkload",
    "TraceWorkload",
    "WorkloadFile",
    "BackupSnapshot",
    "TraceChunk",
    "TraceFile",
    "TraceSnapshot",
    "iter_trace_snapshots",
    "materialize_workload",
    "SyntheticDataGenerator",
    "SyntheticWorkload",
    "VersionedSourceWorkload",
    "VMBackupWorkload",
    "MailWorkload",
    "WebWorkload",
    "STANDARD_WORKLOADS",
]
