"""A VM-backup-like workload: few very large files, skewed sizes, block edits.

Stands in for the paper's "VM" dataset (consecutive monthly full backups of 8
virtual machine servers, 313 GB, dedup ratio ~4.3).  The properties preserved:

* each snapshot contains one very large image file per VM,
* image sizes are strongly skewed (a couple of VMs dominate the capacity),
* consecutive full backups of the same VM differ by scattered block-level
  writes, so cross-generation redundancy is high but intra-generation
  redundancy is low,
* the large-and-skewed file size distribution is exactly what makes
  file-granularity routing (Extreme Binning) both ineffective and unbalanced
  on this dataset (Figure 8, VM panel).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import BackupSnapshot, ContentWorkload, WorkloadFile
from repro.workloads.synthetic import SyntheticDataGenerator


class VMBackupWorkload(ContentWorkload):
    """Synthetic monthly full backups of a small VM fleet.

    Parameters
    ----------
    num_backups:
        Number of full-backup generations (the paper uses 2 monthly fulls).
    num_vms:
        Number of virtual machines (the paper uses 8).
    base_image_size:
        Size of the smallest VM image in bytes.  Image ``i`` is roughly
        ``base_image_size * size_skew**i`` so sizes are skewed.
    size_skew:
        Multiplicative size skew across VMs.
    change_fraction:
        Fraction of each image rewritten between consecutive backups.
    seed:
        Determinism seed.
    """

    name = "vm"

    def __init__(
        self,
        num_backups: int = 3,
        num_vms: int = 6,
        base_image_size: int = 512 * 1024,
        size_skew: float = 1.45,
        change_fraction: float = 0.12,
        seed: int = 313,
    ):
        if num_backups < 1 or num_vms < 1:
            raise WorkloadError("num_backups and num_vms must be >= 1")
        if base_image_size < 4096:
            raise WorkloadError("base_image_size must be at least 4 KiB")
        if size_skew < 1.0:
            raise WorkloadError("size_skew must be >= 1.0")
        self.num_backups = num_backups
        self.num_vms = num_vms
        self.base_image_size = base_image_size
        self.size_skew = size_skew
        self.change_fraction = change_fraction
        self.seed = seed

    def _image_size(self, vm_index: int) -> int:
        return int(self.base_image_size * (self.size_skew ** vm_index))

    def snapshots(self) -> Iterator[BackupSnapshot]:
        generator = SyntheticDataGenerator(self.seed)
        images: List[bytes] = [
            generator.unique_bytes(self._image_size(vm)) for vm in range(self.num_vms)
        ]
        operating_systems = ["windows" if vm % 8 < 3 else "linux" for vm in range(self.num_vms)]
        for backup in range(self.num_backups):
            if backup > 0:
                images = [
                    # Block-level writes: 4 KB-aligned overwrite spans.
                    generator.mutate_overwrite(
                        image,
                        num_edits=max(1, int(len(image) * self.change_fraction / 4096)),
                        edit_size=4096,
                    )
                    for image in images
                ]
            files = [
                WorkloadFile(
                    path=f"vm{vm:02d}-{operating_systems[vm]}/disk.img",
                    data=image,
                )
                for vm, image in enumerate(images)
            ]
            yield BackupSnapshot(label=f"monthly-{backup + 1:02d}", files=files)
