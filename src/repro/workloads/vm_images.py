"""A VM-backup-like workload: few very large files, skewed sizes, block edits.

Stands in for the paper's "VM" dataset (consecutive monthly full backups of 8
virtual machine servers, 313 GB, dedup ratio ~4.3).  The properties preserved:

* each snapshot contains one very large image file per VM,
* image sizes are strongly skewed (a couple of VMs dominate the capacity),
* consecutive full backups of the same VM differ by scattered block-level
  writes, so cross-generation redundancy is high but intra-generation
  redundancy is low,
* the large-and-skewed file size distribution is exactly what makes
  file-granularity routing (Extreme Binning) both ineffective and unbalanced
  on this dataset (Figure 8, VM panel).

Images are never materialised.  Each VM image is modelled as a *last-write
map*: one small integer per 4 KB device block recording the backup generation
that last wrote it.  A block's content is a deterministic function of
``(seed, vm, block index, last-write generation)``, so emitting a snapshot
yields lazy :class:`~repro.workloads.base.WorkloadFile` sources that stream
an arbitrarily large image 4 KB at a time -- peak memory is O(one block)
plus the integer map, not O(image).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

from repro.errors import WorkloadError
from repro.workloads.base import BackupSnapshot, ContentWorkload, WorkloadFile

#: Device block size: the granularity of simulated VM writes.
VM_BLOCK_SIZE = 4096


class VMBackupWorkload(ContentWorkload):
    """Synthetic monthly full backups of a small VM fleet.

    Parameters
    ----------
    num_backups:
        Number of full-backup generations (the paper uses 2 monthly fulls).
    num_vms:
        Number of virtual machines (the paper uses 8).
    base_image_size:
        Size of the smallest VM image in bytes.  Image ``i`` is roughly
        ``base_image_size * size_skew**i`` so sizes are skewed.
    size_skew:
        Multiplicative size skew across VMs.
    change_fraction:
        Fraction of each image rewritten between consecutive backups
        (as scattered 4 KB block writes).
    seed:
        Determinism seed.
    """

    name = "vm"

    def __init__(
        self,
        num_backups: int = 3,
        num_vms: int = 6,
        base_image_size: int = 512 * 1024,
        size_skew: float = 1.45,
        change_fraction: float = 0.12,
        seed: int = 313,
    ):
        if num_backups < 1 or num_vms < 1:
            raise WorkloadError("num_backups and num_vms must be >= 1")
        if base_image_size < 4096:
            raise WorkloadError("base_image_size must be at least 4 KiB")
        if size_skew < 1.0:
            raise WorkloadError("size_skew must be >= 1.0")
        self.num_backups = num_backups
        self.num_vms = num_vms
        self.base_image_size = base_image_size
        self.size_skew = size_skew
        self.change_fraction = change_fraction
        self.seed = seed

    def _image_size(self, vm_index: int) -> int:
        return int(self.base_image_size * (self.size_skew ** vm_index))

    def _num_blocks(self, vm_index: int) -> int:
        return -(-self._image_size(vm_index) // VM_BLOCK_SIZE)

    def _block_payload(self, vm_index: int, block_index: int, version: int, length: int) -> bytes:
        rng = random.Random(f"{self.seed}:{vm_index}:{block_index}:{version}")
        return rng.randbytes(length)

    def _image_source(self, vm_index: int, last_write: Sequence[int]):
        image_size = self._image_size(vm_index)

        def blocks() -> Iterator[bytes]:
            remaining = image_size
            for block_index, version in enumerate(last_write):
                length = min(VM_BLOCK_SIZE, remaining)
                remaining -= length
                yield self._block_payload(vm_index, block_index, version, length)
        return blocks

    def snapshots(self) -> Iterator[BackupSnapshot]:
        rng = random.Random(self.seed)
        last_write: List[List[int]] = [
            [0] * self._num_blocks(vm) for vm in range(self.num_vms)
        ]
        operating_systems = ["windows" if vm % 8 < 3 else "linux" for vm in range(self.num_vms)]
        for backup in range(self.num_backups):
            if backup > 0:
                for vm in range(self.num_vms):
                    # Block-level writes: scattered 4 KB-aligned overwrites.
                    num_edits = max(
                        1, int(self._image_size(vm) * self.change_fraction / VM_BLOCK_SIZE)
                    )
                    num_blocks = len(last_write[vm])
                    for _ in range(num_edits):
                        last_write[vm][rng.randrange(num_blocks)] = backup
            files = [
                WorkloadFile(
                    path=f"vm{vm:02d}-{operating_systems[vm]}/disk.img",
                    # Freeze this generation's map; later backups mutate it.
                    source=self._image_source(vm, tuple(last_write[vm])),
                    size_hint=self._image_size(vm),
                )
                for vm in range(self.num_vms)
            ]
            yield BackupSnapshot(label=f"monthly-{backup + 1:02d}", files=files)
