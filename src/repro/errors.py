"""Exception hierarchy for the repro (Sigma-Dedupe reproduction) library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Subsystems raise the most specific subclass that
applies.  Plain argument validation raises :class:`ValidationError`, which is
*also* a ``ValueError`` so call sites keep the conventional contract -- but it
still lands under :class:`ReproError`, and the error-taxonomy checker
(``python -m repro.analysis --check taxonomy``) enforces that every ``raise``
in the library constructs a member of this hierarchy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised for invalid argument or configuration values.

    Doubly derived: callers that catch ``ValueError`` for plain argument
    validation keep working, while ``except ReproError`` still catches
    everything the library raises."""


class ChunkingError(ReproError):
    """Raised when a chunker is misconfigured or fed invalid data."""


class FingerprintError(ReproError):
    """Raised for fingerprinting problems (unknown algorithm, bad digest)."""


class ParallelLaneError(ReproError):
    """Raised when a parallel ingest lane (thread or process) fails
    structurally: a lane process died mid-file, a shared-memory slab could
    not be created, or a lane returned a malformed reply."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate (containers, indexes)."""


class ContainerFullError(StorageError):
    """Raised when a chunk is appended to a container that cannot hold it."""


class ContainerNotFoundError(StorageError):
    """Raised when a container id is not present in a container store."""


class CompressionError(StorageError):
    """Raised for spill-plane compression problems: an unknown or unavailable
    codec at configuration time, or a blob that cannot be decompressed.

    The spill read path never lets this (or a raw ``zlib.error``) escape to
    restore callers: a spill file that fails decompression surfaces as
    :class:`ContainerNotFoundError` with this error as its cause."""


class ChunkNotFoundError(StorageError):
    """Raised when a chunk fingerprint cannot be resolved during restore."""


class RestoreIntegrityError(StorageError):
    """Raised when a restored chunk payload disagrees with its file recipe.

    Distinct from :class:`ChunkNotFoundError`: the chunk *was* found and read
    back, but its content does not match what the recipe recorded (e.g. a
    length mismatch from a corrupted container).  Chunks that fail integrity
    verification are never counted as restored."""


class RecoveryError(StorageError):
    """Raised when crash recovery itself cannot proceed: replaying a manifest
    journal with a mismatched codec, recovering into a non-empty store, or
    asking a backend without a journal to replay one.

    Deliberately *not* raised for torn journal tails, orphaned spill files or
    truncated data sections -- those are the expected debris of a hard kill
    and recovery silently discards them (prefix consistency), reporting counts
    in the recovery record instead."""


class RoutingError(ReproError):
    """Raised when a data-routing scheme cannot produce a target node."""


class ClusterError(ReproError):
    """Raised for cluster-level configuration or protocol problems."""


class NodeNotFoundError(ClusterError):
    """Raised when a node id does not exist in the cluster."""


class NodeUnavailableError(ClusterError):
    """Raised when a node (or every replica holding its data) cannot serve a
    request: the node is marked down, a fault-injection window has it dark, or
    failover exhausted the replica chain without resolving the read.

    Distinct from :class:`NodeNotFoundError` (a node id outside the cluster,
    a caller bug): an unavailable node *exists* and may come back."""


class TransportError(ClusterError):
    """Base class for node-plane transport problems: wire-protocol framing
    violations, worker handshake failures, or remote errors that do not map
    back onto a known repro exception class."""


class WireProtocolError(TransportError):
    """Raised when a wire message violates the length-prefixed framing
    contract (oversized header, impossible frame count, short read mid-frame).
    Always a bug or a corrupted stream, never a retryable condition."""


class ConnectionLostError(TransportError):
    """Raised when the byte stream to a node worker ends mid-conversation
    (EOF, broken pipe, reset).  The proxy layer converts this into
    :class:`NodeUnavailableError` -- a lost connection means the worker
    process is gone, which is exactly the down-node failure model."""


class RecipeError(ReproError):
    """Raised when a file recipe is missing or inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload generator is misconfigured."""


class SimulationError(ReproError):
    """Raised when a simulation experiment is misconfigured."""


class AnalysisError(ReproError):
    """Raised when the static-analysis tooling itself is misconfigured
    (unknown checker name, unreadable source tree, malformed annotation)."""


class LockOwnershipError(ReproError):
    """Raised by the ``REPRO_LOCK_ASSERTS=1`` debug mode when a method that
    requires a lock executes on a thread that does not hold it."""


class FaultInjectionError(ReproError):
    """Base class for errors raised *on purpose* by the deterministic
    fault-injection harness (:mod:`repro.faults`).  Nothing in the library
    raises these outside an installed :class:`~repro.faults.FaultPlan`."""


class SimulatedCrashError(FaultInjectionError):
    """Raised by a fault plan to simulate a hard kill at a planned point
    (kill-at-spill-K, torn journal write).  Test harnesses treat the raising
    process as dead from that instant: the storage directory is left exactly
    as a SIGKILL would leave it."""


class InjectedReadError(FaultInjectionError, StorageError):
    """A probabilistic spill-read failure injected by a fault plan.

    Doubly derived from :class:`StorageError` because it models an I/O fault:
    the cluster failover path treats it exactly like a real unreadable spill
    file (bounded retry, then replica failover)."""


class RpcDroppedError(FaultInjectionError, TransportError):
    """A deterministically dropped RPC injected by a fault plan's
    ``drop_rpc`` schedule.

    Doubly derived from :class:`TransportError` because it models a lost
    message on the node-plane wire: the transport read path treats it as a
    retryable transient (bounded retry under the
    :class:`~repro.cluster.replication.FailoverPolicy`, then replica
    failover), exactly like a real dropped datagram would surface."""
