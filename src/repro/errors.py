"""Exception hierarchy for the repro (Sigma-Dedupe reproduction) library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Subsystems raise the most specific subclass that
applies.  Plain argument validation raises :class:`ValidationError`, which is
*also* a ``ValueError`` so call sites keep the conventional contract -- but it
still lands under :class:`ReproError`, and the error-taxonomy checker
(``python -m repro.analysis --check taxonomy``) enforces that every ``raise``
in the library constructs a member of this hierarchy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised for invalid argument or configuration values.

    Doubly derived: callers that catch ``ValueError`` for plain argument
    validation keep working, while ``except ReproError`` still catches
    everything the library raises."""


class ChunkingError(ReproError):
    """Raised when a chunker is misconfigured or fed invalid data."""


class FingerprintError(ReproError):
    """Raised for fingerprinting problems (unknown algorithm, bad digest)."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate (containers, indexes)."""


class ContainerFullError(StorageError):
    """Raised when a chunk is appended to a container that cannot hold it."""


class ContainerNotFoundError(StorageError):
    """Raised when a container id is not present in a container store."""


class CompressionError(StorageError):
    """Raised for spill-plane compression problems: an unknown or unavailable
    codec at configuration time, or a blob that cannot be decompressed.

    The spill read path never lets this (or a raw ``zlib.error``) escape to
    restore callers: a spill file that fails decompression surfaces as
    :class:`ContainerNotFoundError` with this error as its cause."""


class ChunkNotFoundError(StorageError):
    """Raised when a chunk fingerprint cannot be resolved during restore."""


class RestoreIntegrityError(StorageError):
    """Raised when a restored chunk payload disagrees with its file recipe.

    Distinct from :class:`ChunkNotFoundError`: the chunk *was* found and read
    back, but its content does not match what the recipe recorded (e.g. a
    length mismatch from a corrupted container).  Chunks that fail integrity
    verification are never counted as restored."""


class RoutingError(ReproError):
    """Raised when a data-routing scheme cannot produce a target node."""


class ClusterError(ReproError):
    """Raised for cluster-level configuration or protocol problems."""


class NodeNotFoundError(ClusterError):
    """Raised when a node id does not exist in the cluster."""


class RecipeError(ReproError):
    """Raised when a file recipe is missing or inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload generator is misconfigured."""


class SimulationError(ReproError):
    """Raised when a simulation experiment is misconfigured."""


class AnalysisError(ReproError):
    """Raised when the static-analysis tooling itself is misconfigured
    (unknown checker name, unreadable source tree, malformed annotation)."""


class LockOwnershipError(ReproError):
    """Raised by the ``REPRO_LOCK_ASSERTS=1`` debug mode when a method that
    requires a lock executes on a thread that does not hold it."""
