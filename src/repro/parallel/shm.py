"""Shared-memory slab lanes for the process ingest front end.

The thread executor scales only as far as the GIL allows: the NumPy gear scan
and ``hashlib`` release it, but the per-chunk Python bookkeeping between them
does not, so ``workers=4`` buys barely anything on CPU-bound front ends.  The
process executor escapes the GIL entirely -- and this module is what makes
that affordable:

* Each lane is one OS process attached to a per-lane ``SharedMemory`` slab.
  The parent writes a file's payload into a free slab slot (its only copy of
  the input); the lane runs the full chunk+fingerprint front end **in place**
  over a read-only ``memoryview`` of that slot.
* Only a compact packed reply -- ``(end_offsets_u64, fingerprints_blob)``,
  ~28 bytes per chunk -- crosses the command pipe back.  Payload bytes are
  never pickled, in either direction.
* The parent re-slices payloads off the same slab view
  (:func:`~repro.fingerprint.fingerprinter.records_from_packed`), either as
  ``bytes`` copies (safe everywhere) or as zero-copy ``memoryview`` slices
  for the engine's direct lane->wire hand-off mode.

Slabs hold two fixed slots each, which matches the engine's admission bound
(at most two files in flight per lane); payloads that do not fit a slot --
or arrive while hand-off pinning keeps both slots busy -- ride a dedicated
one-shot segment instead, so submission never blocks and never copies twice.

Hygiene: segment names carry a tag derived from ``REPRO_TEARDOWN_TOKEN`` so
the CI teardown audit can attribute leaks; the parent's resource-tracker
registration is kept (it unlinks segments even after a parent SIGKILL), while
``spawn``-started lanes unregister their attach-time registration so a lane's
own tracker never unlinks a live slab out from under the parent.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from dataclasses import replace
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Iterable, List, Optional, Set, Tuple, Union

from repro.core.partitioner import PartitionerConfig, StreamPartitioner
from repro.errors import ParallelLaneError
from repro.fingerprint.fingerprinter import pack_record_pairs

ENV_TEARDOWN_TOKEN = "REPRO_TEARDOWN_TOKEN"
"""When set (the CI teardown audit sets it), segment names embed a hash of
this token so leaked ``/dev/shm`` entries can be attributed to the run."""

SEGMENT_PREFIX = "repro-shm"
"""Leading component of every segment name this module creates."""

DEFAULT_SLOT_BYTES = 8 * 1024 * 1024
"""Capacity of one slab slot (two per lane).  Files larger than this use a
dedicated one-shot segment; /dev/shm pages are only committed when written,
so oversizing costs address space, not memory."""

_BufferPayload = Union[bytes, bytearray, memoryview]


def segment_tag() -> str:
    """The 8-hex-char tag embedded in every segment name of this process.

    Derived from ``REPRO_TEARDOWN_TOKEN`` when present (stable across the
    parent and its lanes, so the teardown audit can glob for it), random
    otherwise.  Kept short: POSIX shm names are capped at 31 chars on macOS.
    """
    token = os.environ.get(ENV_TEARDOWN_TOKEN, "")
    if token:
        return hashlib.sha1(token.encode()).hexdigest()[:8]
    return uuid.uuid4().hex[:8]


def _unregister_attach(shm: SharedMemory) -> None:
    """Drop a *spawn*-started child's attach-time resource-tracker entry.

    CPython's ``SharedMemory`` registers with the resource tracker even on
    attach; in a spawned child that is a fresh tracker process which would
    unlink the parent's live slab when the child exits.  (Forked children
    share the parent's tracker, where register/unregister is set-idempotent,
    so they skip this.)
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def _lane_main(
    conn: Connection,
    unwanted: List[Connection],
    shm_name: str,
    config: PartitionerConfig,
    unregister: bool,
) -> None:
    """Lane process entry point: serve chunk+fingerprint requests forever.

    Commands arrive on ``conn``: ``("file", start, length)`` for a slab slot,
    ``("seg", name, length)`` for a dedicated segment, ``None`` to stop.
    Each reply is ``("ok", packed)`` or ``("err", exception)``.

    ``unwanted`` holds every other pipe end a forked lane inherited --
    including this pipe's own parent end.  They are closed first thing:
    a lane that kept its own parent end alive would never see EOF on
    ``recv()`` after the parent dies uncleanly, leaving orphan lanes
    pinning the slab segments forever (the SIGKILL teardown audit catches
    exactly this).
    """
    for other in unwanted:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed is fine
            pass
    shm = SharedMemory(name=shm_name, create=False)
    if unregister:
        _unregister_attach(shm)
    # Payloads stay in the slab; lanes return fingerprints and offsets only,
    # so retaining chunk data here would copy bytes just to discard them.
    partitioner = StreamPartitioner(replace(config, keep_chunk_data=False))
    base = memoryview(shm.buf).toreadonly()
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            if command is None:
                break
            try:
                kind = command[0]
                if kind == "file":
                    _kind, start, length = command
                    reply = _chunk_packed(partitioner, base[start:start + length])
                else:
                    _kind, name, length = command
                    segment = SharedMemory(name=name, create=False)
                    if unregister:
                        _unregister_attach(segment)
                    view = memoryview(segment.buf).toreadonly()
                    try:
                        reply = _chunk_packed(partitioner, view[:length])
                    finally:
                        view.release()
                        segment.close()
                conn.send(("ok", reply))
            except BaseException as exc:  # noqa: BLE001 - crosses the process boundary
                try:
                    pickle.dumps(exc)
                    conn.send(("err", exc))
                except Exception:
                    conn.send(("err", ParallelLaneError(repr(exc))))
    finally:
        base.release()
        shm.close()
        conn.close()


def _chunk_packed(partitioner: StreamPartitioner, view: memoryview) -> bytes:
    """Run the serial front end over ``view`` in place, return the packed reply.

    Goes through ``iter_chunk_records`` (the exact code path serial ingest
    uses) so boundaries, fingerprints and statistics semantics are identical
    by construction, not by reimplementation.
    """
    try:
        return pack_record_pairs(list(partitioner.iter_chunk_records(view)))
    finally:
        view.release()


class _Slot:
    """One fixed region of a lane's slab."""

    __slots__ = ("start", "capacity", "free")

    def __init__(self, start: int, capacity: int):
        self.start = start
        self.capacity = capacity
        self.free = True


class _Lane:
    """Parent-side handle for one lane process and its slab."""

    __slots__ = ("conn", "process", "shm", "buf", "slots")

    def __init__(
        self, conn: Connection, process: Any, shm: SharedMemory, slot_bytes: int
    ):
        self.conn = conn
        self.process = process
        self.shm = shm
        self.buf = memoryview(shm.buf)
        self.slots = [_Slot(0, slot_bytes), _Slot(slot_bytes, slot_bytes)]

    def take_slot(self, length: int) -> Optional[_Slot]:
        for slot in self.slots:
            if slot.free and length <= slot.capacity:
                slot.free = False
                return slot
        return None


class PendingChunkFile:
    """One submitted file: resolves to ``(payload_view, packed_reply)``.

    ``wait()`` blocks for the lane's reply (FIFO per lane, matching the
    pool's round-robin submission order); ``release()`` returns the slab slot
    (or unlinks the dedicated segment) for reuse -- the caller decides when,
    which is what lets the engine's hand-off mode defer reuse behind its
    send frontier.
    """

    __slots__ = ("_pool", "_lane", "_slot", "_segment", "_view", "_released")

    def __init__(
        self,
        pool: "ShmLanePool",
        lane: _Lane,
        slot: Optional[_Slot],
        segment: Optional[SharedMemory],
        view: memoryview,
    ):
        self._pool = pool
        self._lane = lane
        self._slot = slot
        self._segment = segment
        self._view = view
        self._released = False

    def wait(self) -> Tuple[memoryview, bytes]:
        """Block for the lane's packed reply; raises what the lane raised."""
        try:
            status, value = self._lane.conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelLaneError(
                "ingest lane process died before replying "
                f"(exitcode={self._lane.process.exitcode})"
            ) from exc
        if status != "ok":
            raise value
        return self._view, value

    def release(self) -> None:
        """Allow the payload region to be reused (slot) or unlinked (segment)."""
        if self._released:
            return
        self._released = True
        # Payload record views are independent slices of the base buffer, so
        # dropping this handle's view never invalidates them; it just stops
        # pinning the slab mapping once those records die too.
        self._view.release()
        if self._slot is not None:
            self._slot.free = True
        if self._segment is not None:
            self._pool._release_segment(self._segment)


class ShmLanePool:
    """N lane processes, each behind a two-slot shared-memory slab.

    Single-consumer by design: one thread (the engine's re-sequencing
    generator) submits and waits, so no parent-side locking is needed.
    ``close()`` is idempotent and always unlinks every segment it created --
    with live payload memoryviews still outstanding the mappings stay valid
    (``close`` on those is best-effort) but the names never leak.
    """

    def __init__(
        self,
        config: PartitionerConfig,
        workers: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ParallelLaneError(f"lane pool needs >= 1 worker, got {workers}")
        if slot_bytes < 1:
            raise ParallelLaneError(f"slot_bytes must be positive, got {slot_bytes}")
        if start_method is None:
            start_method = (
                "fork" if "fork" in get_all_start_methods() else "spawn"
            )
        context = get_context(start_method)
        unregister = start_method != "fork"
        self._tag = segment_tag()
        self._sequence = 0
        self._next_lane = 0
        self._closed = False
        self._segments: Set[SharedMemory] = set()
        self.workers = workers
        self.slot_bytes = slot_bytes
        self.lanes: List[_Lane] = []
        # Forked lanes inherit every pipe fd that exists at fork time --
        # including their own command pipe's parent end, which would keep
        # recv() from ever seeing EOF if this process dies without cleanup.
        # Create all pipes up front and hand each lane the complete list of
        # ends that are not its own to close, so every lane unblocks the
        # moment the parent's fds are gone (clean exit or SIGKILL alike).
        # Spawned children inherit nothing beyond the pickled child end.
        inherit_all = start_method == "fork"
        pipes = [context.Pipe() for _ in range(workers)] if inherit_all else []
        try:
            for index in range(workers):
                shm = self._create_segment(2 * slot_bytes)
                if inherit_all:
                    parent_conn, child_conn = pipes[index]
                    unwanted = [
                        end
                        for pair in pipes
                        for end in pair
                        if end is not child_conn
                    ]
                else:
                    parent_conn, child_conn = context.Pipe()
                    unwanted = []
                process = context.Process(
                    target=_lane_main,
                    args=(child_conn, unwanted, shm.name, config, unregister),
                    daemon=True,
                    name=f"repro-ingest-lane-{len(self.lanes)}",
                )
                process.start()
                if not inherit_all:
                    child_conn.close()
                self.lanes.append(_Lane(parent_conn, process, shm, slot_bytes))
            for _parent_conn, child_conn in pipes:
                child_conn.close()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # segment lifecycle
    # ------------------------------------------------------------------ #

    def _create_segment(self, size: int) -> SharedMemory:
        name = f"{SEGMENT_PREFIX}-{self._tag}-{os.getpid() % 10_000_000}-{self._sequence}"
        self._sequence += 1
        shm = SharedMemory(name=name, create=True, size=size)
        self._segments.add(shm)
        return shm

    def _release_segment(self, segment: SharedMemory) -> None:
        self._segments.discard(segment)
        _unlink_then_close(segment)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, payload: "_BufferPayload | Iterable[bytes]") -> PendingChunkFile:
        """Write one file's payload into shared memory and dispatch it.

        Round-robin over the lanes; never blocks on slot availability (a full
        lane gets a dedicated one-shot segment instead).  Streamed payloads
        are written block-by-block straight into the slot.
        """
        if self._closed:
            raise ParallelLaneError("lane pool is closed")
        lane = self.lanes[self._next_lane]
        self._next_lane = (self._next_lane + 1) % len(self.lanes)
        if isinstance(payload, (bytes, bytearray, memoryview)):
            return self._submit_buffer(lane, memoryview(payload).cast("B"))
        return self._submit_stream(lane, iter(payload))

    def _submit_buffer(self, lane: _Lane, data: memoryview) -> PendingChunkFile:
        length = data.nbytes
        slot = lane.take_slot(length)
        if slot is None and length > 0:
            return self._submit_segment(lane, data)
        start = slot.start if slot is not None else 0
        lane.buf[start:start + length] = data
        return self._dispatch_slot(lane, slot, start, length)

    def _submit_stream(
        self, lane: _Lane, blocks: "Iterable[bytes]"
    ) -> PendingChunkFile:
        slot = lane.take_slot(1)
        start = slot.start if slot is not None else 0
        capacity = slot.capacity if slot is not None else 0
        written = 0
        for block in blocks:
            chunk = memoryview(block).cast("B")
            if written + chunk.nbytes > capacity:
                # The slot overflowed (or none was free): fall back to a
                # dedicated segment holding the already-written prefix plus
                # the rest of the stream.
                rest = b"".join([bytes(chunk), *map(bytes, blocks)])  # streaming-ok: oversize spill is bounded by the in-flight window
                prefix = bytes(lane.buf[start:start + written])  # streaming-ok: oversize spill is bounded by the in-flight window
                if slot is not None:
                    slot.free = True
                merged = memoryview(prefix + rest)
                return self._submit_segment(lane, merged)
            lane.buf[start + written:start + written + chunk.nbytes] = chunk
            written += chunk.nbytes
        return self._dispatch_slot(lane, slot, start, written)

    def _dispatch_slot(
        self, lane: _Lane, slot: Optional[_Slot], start: int, length: int
    ) -> PendingChunkFile:
        self._send(lane, ("file", start, length))
        view = lane.buf[start:start + length].toreadonly()
        return PendingChunkFile(self, lane, slot, None, view)

    def _submit_segment(self, lane: _Lane, data: memoryview) -> PendingChunkFile:
        segment = self._create_segment(max(1, data.nbytes))
        buf = memoryview(segment.buf)
        buf[: data.nbytes] = data
        self._send(lane, ("seg", segment.name, data.nbytes))
        view = buf[: data.nbytes].toreadonly()
        return PendingChunkFile(self, lane, None, segment, view)

    def _send(self, lane: _Lane, command: Tuple[Any, ...]) -> None:
        try:
            lane.conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            raise ParallelLaneError(
                f"ingest lane process is gone (exitcode={lane.process.exitcode})"
            ) from exc

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop the lanes and unlink every segment (idempotent, best-effort).

        Unlinking always succeeds (names never leak, which is what the CI
        teardown audit checks); ``close`` of a mapping with live exported
        payload views raises ``BufferError`` and is deliberately tolerated --
        the mapping dies with its last view.
        """
        if self._closed:
            return
        self._closed = True
        for lane in self.lanes:
            try:
                lane.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for lane in self.lanes:
            lane.process.join(timeout=2.0)
            if lane.process.is_alive():
                lane.process.terminate()
                lane.process.join(timeout=2.0)
            if lane.process.is_alive():  # pragma: no cover - terminate suffices
                lane.process.kill()
                lane.process.join(timeout=2.0)
            try:
                lane.conn.close()
            except OSError:  # pragma: no cover - close never matters
                pass
        for segment in list(self._segments):
            self._segments.discard(segment)
            _unlink_then_close(segment)
        for lane in self.lanes:
            try:
                lane.buf.release()
            except BufferError:  # pragma: no cover - slices outlive the base view
                pass
            _unlink_then_close(lane.shm)


def _unlink_then_close(segment: SharedMemory) -> None:
    """Unlink unconditionally, then close if no exported views pin the map."""
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    try:
        segment.close()
    except BufferError:
        # Live payload memoryviews still reference the mapping (hand-off mode
        # records outliving the pool).  The name is already gone; detach the
        # internals so ``__del__`` does not retry the doomed close -- the
        # managed buffer keeps the mapping alive exactly until the last view
        # dies, at which point the mmap deallocates and unmaps itself.
        segment._buf = None  # type: ignore[attr-defined]
        segment._mmap = None  # type: ignore[attr-defined]
        fd = getattr(segment, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed elsewhere
                pass
            segment._fd = -1  # type: ignore[attr-defined]
