"""The parallel ingest engine: worker lanes for chunking and fingerprinting.

The CPU cost of ingest is concentrated in the client front end -- the
content-defined scan and the SHA-1 fingerprint -- while the batched node data
plane is an order of magnitude faster (see ``BENCH_ingest.json``).  This
module scales the front end across N worker *lanes* without giving up the
serial path's exact results:

* Each lane owns its own :class:`~repro.core.partitioner.StreamPartitioner`
  (chunker + fingerprinter), mirroring the paper's "a deduplication thread for
  each data stream" design (Section 4.3).
* Lanes are **threads** by default: the NumPy-vectorised gear scan and
  ``hashlib`` digests release the GIL, so chunk+fingerprint work genuinely
  overlaps on multi-core hosts.  A **process pool** option covers the
  pure-Python chunker fallback, where the GIL would otherwise serialise the
  scan.
* Work flows through bounded queues, so peak memory is
  O(lanes x super-chunk), never O(stream): a lane that runs ahead of the
  consumer blocks instead of buffering.

Two consumption shapes are offered:

``iter_file_records`` / ``partition_files``
    Deterministic single-stream ingest: files are chunked and fingerprinted
    concurrently but their record streams are re-sequenced in file order and
    grouped through
    :meth:`~repro.core.partitioner.StreamPartitioner.partition_file_records`,
    so super-chunk boundaries, handprints, routing decisions, statistics and
    recipes are byte-identical to serial ingest.  The node data plane runs
    serially in the consumer thread, overlapped with the lanes' front-end
    work.  This is what ``BackupClient.backup_files(workers=N)`` uses.

``iter_stream_superchunks``
    Concurrent multi-stream ingest: one lane per independent data stream,
    assembled super-chunks from all lanes merged through one bounded queue in
    completion order.  This is the fig-4 multi-stream experiment shape used by
    :class:`~repro.parallel.pipeline.ParallelDedupePipeline`.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from queue import Empty, Full, Queue
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.partitioner import FilePayload, PartitionerConfig, StreamPartitioner
from repro.core.superchunk import SuperChunk
from repro.fingerprint.fingerprinter import ChunkRecord, records_from_packed
from repro.errors import ValidationError

ENV_INGEST_WORKERS = "REPRO_INGEST_WORKERS"
"""Environment variable naming the default worker-lane count for ingest."""

DEFAULT_BATCH_BYTES = 256 * 1024
"""Records cross a lane's output queue in batches of about this many payload
bytes: large enough to amortise queue overhead, small enough that the bound
below stays tight."""

DEFAULT_QUEUE_DEPTH = 4
"""Batches a lane may run ahead of the consumer before blocking; together
with :data:`DEFAULT_BATCH_BYTES` this bounds each lane to about one
super-chunk of buffered payload."""

_POLL_SECONDS = 0.05


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker-lane count.

    An explicit argument wins; otherwise the ``REPRO_INGEST_WORKERS``
    environment variable applies (used by the CI leg that runs the
    equivalence suites in parallel mode); the fallback is 1 (serial).
    """
    if workers is None:
        env = os.environ.get(ENV_INGEST_WORKERS, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValidationError(
                f"{ENV_INGEST_WORKERS} must be a positive integer, got {env!r}"
            ) from None
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


class _WorkerFailure:
    """An exception captured in a lane, re-raised in the consumer thread."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


class _FileTask:
    """One file in flight: its identity plus the lane's bounded output queue."""

    __slots__ = ("path", "payload", "queue")

    def __init__(self, path: str, payload: FilePayload, depth: int):
        self.path = path
        self.payload = payload
        self.queue: Queue = Queue(maxsize=depth)


_END_OF_FILE = object()
_END_OF_INPUT = object()
_LANE_DONE = object()


def _put_cancellable(queue: Queue, item: object, cancelled: threading.Event) -> bool:
    """Blocking put that gives up when the run is cancelled."""
    while not cancelled.is_set():
        try:
            queue.put(item, timeout=_POLL_SECONDS)
            return True
        except Full:
            continue
    return False


def _get_cancellable(queue: Queue, cancelled: threading.Event) -> object:
    """Blocking get that gives up (returning the end marker) when cancelled."""
    while not cancelled.is_set():
        try:
            return queue.get(timeout=_POLL_SECONDS)
        except Empty:
            continue
    return _END_OF_INPUT


def _acquire_cancellable(semaphore: threading.Semaphore, cancelled: threading.Event) -> bool:
    """Blocking semaphore acquire that gives up when the run is cancelled."""
    while not cancelled.is_set():
        if semaphore.acquire(timeout=_POLL_SECONDS):
            return True
    return False


class ParallelIngestEngine:
    """Run chunk+fingerprint front-end work across N worker lanes.

    Parameters
    ----------
    workers:
        Number of lanes.  ``None`` defers to ``REPRO_INGEST_WORKERS`` and
        falls back to 1; with 1 worker the engine still pipelines (the single
        lane chunks while the consumer routes and stores), it just cannot
        overlap front-end work with itself.
    executor:
        ``"thread"`` (default) or ``"process"``.  Threads suit workloads
        whose hot loops release the GIL; the process executor runs each lane
        in its own OS process over per-lane shared-memory slabs
        (:mod:`repro.parallel.shm`) -- input payloads are written into the
        slab once, lanes chunk and fingerprint in place, and only compact
        ``(offsets, fingerprints)`` replies cross the pipe, so the per-chunk
        Python bookkeeping scales past the GIL without ever pickling payload
        bytes.
    batch_bytes / queue_depth:
        Bounded-queue sizing; the per-lane buffered payload is about
        ``batch_bytes * queue_depth``.
    payload_views:
        Process executor only: hand payloads out as zero-copy ``memoryview``
        slices of the shared slab instead of ``bytes`` copies.  Safe only
        when every consumer is done with a super-chunk's payloads before the
        engine has advanced one full super-chunk past it -- true for the
        synchronous-send transport wire path (the lane->wire hand-off), not
        for consumers that retain payload references (the in-process node
        plane stores them).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        executor: str = "thread",
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        payload_views: bool = False,
    ):
        if executor not in ("thread", "process"):
            raise ValidationError(f"executor must be 'thread' or 'process', got {executor!r}")
        if batch_bytes < 1:
            raise ValidationError("batch_bytes must be positive")
        if queue_depth < 1:
            raise ValidationError("queue_depth must be positive")
        if payload_views and executor != "process":
            raise ValidationError("payload_views requires the process executor")
        self.workers = resolve_workers(workers)
        self.executor = executor
        self.batch_bytes = batch_bytes
        self.queue_depth = queue_depth
        self.payload_views = payload_views

    # ------------------------------------------------------------------ #
    # deterministic single-stream mode
    # ------------------------------------------------------------------ #

    def partition_files(
        self,
        config: PartitionerConfig,
        files: Iterable[Tuple[str, FilePayload]],
        stream_id: int = 0,
    ) -> Iterator[Tuple[Optional[SuperChunk], List[Tuple[str, List[ChunkRecord]]]]]:
        """Parallel drop-in for :meth:`StreamPartitioner.partition_files`.

        Chunking and fingerprinting fan out across the lanes; grouping runs
        through the serial path's own
        :meth:`~repro.core.partitioner.StreamPartitioner.partition_file_records`,
        so every yielded ``(superchunk, contributions)`` pair -- boundaries,
        handprints, sequence numbers, zero-byte-file handling -- is identical
        to what the serial partitioner would produce.
        """
        sequencer = StreamPartitioner(config)
        pairs = self.iter_file_records(files, lambda: StreamPartitioner(config))
        return sequencer.partition_file_records(pairs, stream_id=stream_id)

    def iter_file_records(
        self,
        files: Iterable[Tuple[str, FilePayload]],
        partitioner_factory: Callable[[], StreamPartitioner],
    ) -> Iterator[Tuple[str, Iterator[ChunkRecord]]]:
        """Yield ``(path, record_iterator)`` pairs in file order.

        Up to ``workers`` files are chunked and fingerprinted concurrently,
        each lane owning its own partitioner; records surface in file order
        regardless of lane completion order.  Each record iterator must be
        consumed before the next pair is requested (any leftover is drained
        automatically, exactly like ``itertools.groupby``).
        """
        if self.executor == "process":
            return self._process_iter_file_records(files, partitioner_factory)
        return self._thread_iter_file_records(files, partitioner_factory)

    def _thread_iter_file_records(
        self,
        files: Iterable[Tuple[str, FilePayload]],
        partitioner_factory: Callable[[], StreamPartitioner],
    ) -> Iterator[Tuple[str, Iterator[ChunkRecord]]]:
        workers = self.workers
        work: Queue = Queue(maxsize=workers)
        order: Queue = Queue()
        cancelled = threading.Event()
        # Bounds the number of files admitted but not yet fully consumed by
        # the sequencer.  Without it, lanes racing through many small files
        # would park every finished file's records in its queue -- unbounded
        # memory on exactly the workloads the bounded queues exist for.
        inflight = threading.Semaphore(2 * workers)

        def feeder() -> None:
            try:
                for path, payload in files:
                    if not _acquire_cancellable(inflight, cancelled):
                        break
                    task = _FileTask(path, payload, self.queue_depth)
                    order.put(task)
                    if not _put_cancellable(work, task, cancelled):
                        break
            except BaseException as exc:  # noqa: BLE001 - crosses the thread boundary
                order.put(_WorkerFailure(exc))
            finally:
                order.put(_END_OF_INPUT)
                for _ in range(workers):
                    _put_cancellable(work, _END_OF_INPUT, cancelled)

        def lane() -> None:
            partitioner = partitioner_factory()
            batch_limit = self.batch_bytes
            while not cancelled.is_set():
                task = _get_cancellable(work, cancelled)
                if task is _END_OF_INPUT:
                    break
                try:
                    batch: List[ChunkRecord] = []
                    batch_bytes = 0
                    for record in partitioner.iter_chunk_records(task.payload):
                        batch.append(record)
                        batch_bytes += record.length
                        if batch_bytes >= batch_limit:
                            if not _put_cancellable(task.queue, batch, cancelled):
                                break
                            batch = []
                            batch_bytes = 0
                    else:
                        if batch:
                            _put_cancellable(task.queue, batch, cancelled)
                except BaseException as exc:  # noqa: BLE001 - crosses the thread boundary
                    _put_cancellable(task.queue, _WorkerFailure(exc), cancelled)
                _put_cancellable(task.queue, _END_OF_FILE, cancelled)

        threads = [threading.Thread(target=feeder, daemon=True)]
        threads += [threading.Thread(target=lane, daemon=True) for _ in range(workers)]
        for thread in threads:
            thread.start()

        def drain(task: _FileTask) -> Iterator[ChunkRecord]:
            try:
                while True:
                    item = _get_cancellable(task.queue, cancelled)
                    if item is _END_OF_FILE or item is _END_OF_INPUT:
                        return
                    if isinstance(item, _WorkerFailure):
                        raise item.error
                    yield from item
            finally:
                inflight.release()

        try:
            active: Optional[Iterator[ChunkRecord]] = None
            while True:
                entry = order.get()
                if entry is _END_OF_INPUT:
                    break
                if isinstance(entry, _WorkerFailure):
                    raise entry.error
                if active is not None:
                    for _ in active:  # exhaust any abandoned predecessor
                        pass
                active = drain(entry)
                yield entry.path, active
            if active is not None:
                for _ in active:
                    pass
        finally:
            cancelled.set()
            for thread in threads:
                thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # process-lane variant (shared-memory slabs, GIL-free front end)
    # ------------------------------------------------------------------ #

    def _process_iter_file_records(
        self,
        files: Iterable[Tuple[str, FilePayload]],
        partitioner_factory: Callable[[], StreamPartitioner],
    ) -> Iterator[Tuple[str, Iterator[ChunkRecord]]]:
        """Shared-memory process lanes with the same admission/order contract
        as the thread path: up to ``workers + 1`` files in flight, results
        surfaced strictly in file order.

        In hand-off mode (``payload_views``) records carry zero-copy slab
        slices; a file's slab region is only reused once the consumer has
        drained records one full super-chunk *past* that file's end.  The
        re-sequencer flushes a super-chunk as soon as its pending bytes reach
        ``superchunk_size`` -- and the transport wire path puts every flushed
        super-chunk's payload on the wire synchronously before pulling the
        next record -- so by the time the frontier passes, no live reader of
        the region can remain.
        """
        from repro.parallel.shm import PendingChunkFile, ShmLanePool

        config = partitioner_factory().config
        keep_data = config.keep_chunk_data
        hand_off = self.payload_views and keep_data
        reuse_guard = config.superchunk_size
        pool = ShmLanePool(config=config, workers=self.workers)
        try:
            pending: "deque[Tuple[str, PendingChunkFile]]" = deque()
            # Hand-off mode: (handle, frontier) pairs whose slab regions stay
            # pinned until the consumer is `frontier` cumulative bytes in.
            pinned: "deque[Tuple[PendingChunkFile, int]]" = deque()
            consumed = 0
            source = iter(files)
            exhausted = False
            while True:
                while not exhausted and len(pending) <= self.workers:
                    try:
                        path, payload = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((path, pool.submit(payload)))
                if not pending:
                    break
                path, handle = pending.popleft()
                view, packed = handle.wait()
                records = records_from_packed(
                    view, packed, keep_data=keep_data, copy=not hand_off
                )
                if hand_off:
                    while pinned and pinned[0][1] <= consumed:
                        pinned.popleft()[0].release()
                    consumed += view.nbytes
                    pinned.append((handle, consumed + reuse_guard))
                else:
                    handle.release()
                yield path, iter(records)
        finally:
            pool.close()

    # ------------------------------------------------------------------ #
    # concurrent multi-stream mode
    # ------------------------------------------------------------------ #

    def iter_stream_superchunks(
        self,
        streams: Sequence[FilePayload],
        config: PartitionerConfig,
        stream_ids: Optional[Sequence[int]] = None,
    ) -> Iterator[SuperChunk]:
        """Chunk, fingerprint and assemble independent streams concurrently.

        One lane per stream, each owning a partitioner and carrying its
        stream id; assembled super-chunks from all lanes are merged through a
        single bounded queue (completion order across lanes, stream order
        within a lane) for the consumer -- typically the node data plane -- to
        drain.  Peak buffered payload is O(streams x super-chunk).

        With the process executor, streams are chunked and fingerprinted in
        shared-memory lane processes instead (super-chunks assembled in the
        consumer from the compact lane replies, stream order overall).  Each
        stream's payload then occupies slab or segment space whole while its
        lane scans it, so peak memory is O(in-flight streams x stream) --
        suited to the in-memory multi-stream experiments, not to unbounded
        streams.
        """
        streams = list(streams)
        if stream_ids is None:
            stream_ids = list(range(len(streams)))
        if len(stream_ids) != len(streams):
            raise ValidationError("stream_ids must align with streams")
        if not streams:
            return
        if self.executor == "process":
            yield from self._process_iter_stream_superchunks(streams, config, stream_ids)
            return
        merged: Queue = Queue(maxsize=max(2, len(streams)))
        cancelled = threading.Event()

        def lane(stream_id: int, payload: FilePayload) -> None:
            partitioner = StreamPartitioner(config)
            try:
                for superchunk in partitioner.iter_superchunks(payload, stream_id=stream_id):
                    if not _put_cancellable(merged, superchunk, cancelled):
                        return
            except BaseException as exc:  # noqa: BLE001 - crosses the thread boundary
                _put_cancellable(merged, _WorkerFailure(exc), cancelled)
            finally:
                _put_cancellable(merged, _LANE_DONE, cancelled)

        threads = [
            threading.Thread(target=lane, args=(stream_id, payload), daemon=True)
            for stream_id, payload in zip(stream_ids, streams)
        ]
        for thread in threads:
            thread.start()
        remaining = len(threads)
        try:
            while remaining:
                item = merged.get()
                if item is _LANE_DONE:
                    remaining -= 1
                    continue
                if isinstance(item, _WorkerFailure):
                    raise item.error
                yield item
        finally:
            cancelled.set()
            for thread in threads:
                thread.join(timeout=5.0)

    def _process_iter_stream_superchunks(
        self,
        streams: "List[FilePayload]",
        config: PartitionerConfig,
        stream_ids: Sequence[int],
    ) -> Iterator[SuperChunk]:
        """Multi-stream ingest over shared-memory lane processes.

        Up to ``workers`` streams scan concurrently in the lanes; each
        finished stream's compact reply is re-materialised and grouped into
        super-chunks by a per-stream serial partitioner, so boundaries and
        handprints match the thread path exactly.
        """
        from repro.parallel.shm import PendingChunkFile, ShmLanePool

        keep_data = config.keep_chunk_data
        pool = ShmLanePool(config=config, workers=min(self.workers, len(streams)))
        try:
            pending: "deque[Tuple[int, PendingChunkFile]]" = deque()
            source = iter(zip(stream_ids, streams))
            exhausted = False
            while True:
                while not exhausted and len(pending) <= pool.workers:
                    try:
                        stream_id, payload = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((stream_id, pool.submit(payload)))
                if not pending:
                    break
                stream_id, handle = pending.popleft()
                view, packed = handle.wait()
                records = records_from_packed(view, packed, keep_data=keep_data)
                handle.release()
                sequencer = StreamPartitioner(config)
                for superchunk, _contributions in sequencer.partition_file_records(
                    [("stream", iter(records))], stream_id=stream_id
                ):
                    if superchunk is not None:
                        yield superchunk
        finally:
            pool.close()


