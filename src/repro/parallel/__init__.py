"""Multi-stream parallel deduplication (intra-node, Section 4.3).

The paper develops parallel deduplication on multiple data streams per node
("we assign a deduplication thread for each data stream") and measures how
chunking, fingerprinting and similarity-index lookup throughput scale with the
number of streams and locks.  This package provides the thread-based pipeline
and the measurement helpers the Figure 4 benchmarks use.
"""

from repro.parallel.pipeline import (
    ParallelDedupePipeline,
    ThroughputSample,
    measure_chunking_throughput,
    measure_fingerprinting_throughput,
    measure_similarity_index_lookup,
)

__all__ = [
    "ParallelDedupePipeline",
    "ThroughputSample",
    "measure_chunking_throughput",
    "measure_fingerprinting_throughput",
    "measure_similarity_index_lookup",
]
