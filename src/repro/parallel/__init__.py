"""Multi-stream parallel deduplication (intra-node, Section 4.3).

The paper develops parallel deduplication on multiple data streams per node
("we assign a deduplication thread for each data stream") and measures how
chunking, fingerprinting and similarity-index lookup throughput scale with the
number of streams and locks.  This package provides both halves of that story:

* :class:`~repro.parallel.engine.ParallelIngestEngine` -- the production
  ingest engine: N worker lanes chunk and fingerprint concurrently behind
  bounded queues, either re-sequenced for results byte-identical to serial
  ingest (``BackupClient.backup_files(workers=N)``) or merged as independent
  concurrent streams.
* :class:`~repro.parallel.pipeline.ParallelDedupePipeline` and the
  measurement helpers the Figure 4 benchmarks use.
"""

from repro.parallel.engine import (
    ENV_INGEST_WORKERS,
    ParallelIngestEngine,
    resolve_workers,
)
from repro.parallel.pipeline import (
    ParallelDedupePipeline,
    ThroughputSample,
    measure_chunking_throughput,
    measure_fingerprinting_throughput,
    measure_similarity_index_lookup,
)

__all__ = [
    "ENV_INGEST_WORKERS",
    "ParallelIngestEngine",
    "ParallelDedupePipeline",
    "ThroughputSample",
    "measure_chunking_throughput",
    "measure_fingerprinting_throughput",
    "measure_similarity_index_lookup",
    "resolve_workers",
]
