"""Thread-per-stream parallel deduplication and throughput measurement.

Reproduces the intra-node parallelism experiments of Section 4.3:

* Figure 4(a): chunking (CDC) and SHA-1/MD5 fingerprinting throughput at the
  backup client as a function of the number of data streams.
* Figure 4(b): parallel similarity-index lookup throughput as a function of
  the number of lock stripes and data streams.

Absolute numbers are far below the paper's C++ prototype (pure Python, and the
GIL limits CPU-bound thread scaling), but the *shape* of the curves -- scaling
until the stream count passes the available parallelism, and lock-count knees
-- is what the benchmarks compare.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.chunking.base import Chunker
from repro.core.partitioner import PartitionerConfig
from repro.core.superchunk import SuperChunk
from repro.node.dedupe_node import DedupeNode
from repro.parallel.engine import ParallelIngestEngine
from repro.storage.similarity_index import SimilarityIndex
from repro.utils.hashing import digest_bytes


@dataclass
class ThroughputSample:
    """One throughput measurement."""

    label: str
    num_streams: int
    bytes_processed: int
    items_processed: int
    elapsed_seconds: float

    @property
    def megabytes_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.bytes_processed / (1024 * 1024) / self.elapsed_seconds

    @property
    def operations_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.items_processed / self.elapsed_seconds


def _run_in_threads(worker: Callable[[int], None], num_streams: int) -> float:
    """Run ``worker(stream_id)`` in ``num_streams`` threads, return elapsed seconds."""
    threads = [
        threading.Thread(target=worker, args=(stream_id,), daemon=True)
        for stream_id in range(num_streams)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def measure_chunking_throughput(
    stream_data: Sequence[bytes], chunker_factory: Callable[[], Chunker]
) -> ThroughputSample:
    """Chunk each stream in its own thread; report aggregate throughput."""
    chunk_counts = [0] * len(stream_data)

    def worker(stream_id: int) -> None:
        chunker = chunker_factory()
        count = 0
        for _ in chunker.chunk(stream_data[stream_id]):
            count += 1
        chunk_counts[stream_id] = count

    elapsed = _run_in_threads(worker, len(stream_data))
    return ThroughputSample(
        label="chunking",
        num_streams=len(stream_data),
        bytes_processed=sum(len(data) for data in stream_data),
        items_processed=sum(chunk_counts),
        elapsed_seconds=elapsed,
    )


def measure_fingerprinting_throughput(
    stream_data: Sequence[bytes], algorithm: str = "sha1", chunk_size: int = 4096
) -> ThroughputSample:
    """Fingerprint fixed-size chunks of each stream in its own thread."""
    chunk_counts = [0] * len(stream_data)

    def worker(stream_id: int) -> None:
        data = stream_data[stream_id]
        count = 0
        for offset in range(0, len(data), chunk_size):
            digest_bytes(data[offset:offset + chunk_size], algorithm)
            count += 1
        chunk_counts[stream_id] = count

    elapsed = _run_in_threads(worker, len(stream_data))
    return ThroughputSample(
        label=f"fingerprinting-{algorithm}",
        num_streams=len(stream_data),
        bytes_processed=sum(len(data) for data in stream_data),
        items_processed=sum(chunk_counts),
        elapsed_seconds=elapsed,
    )


def measure_similarity_index_lookup(
    fingerprint_streams: Sequence[Sequence[bytes]],
    num_locks: int,
    preload: Optional[Sequence[bytes]] = None,
) -> ThroughputSample:
    """Concurrent similarity-index lookups from multiple streams.

    Each stream performs a lookup for each of its fingerprints against one
    shared :class:`SimilarityIndex` configured with ``num_locks`` lock stripes,
    matching the Figure 4(b) experiment ("we feed the deduplication server with
    chunk fingerprints generated in advance").
    """
    index = SimilarityIndex(num_locks=num_locks)
    if preload:
        for position, fingerprint in enumerate(preload):
            index.insert(fingerprint, position)

    def worker(stream_id: int) -> None:
        for fingerprint in fingerprint_streams[stream_id]:
            index.lookup(fingerprint)

    elapsed = _run_in_threads(worker, len(fingerprint_streams))
    total_lookups = sum(len(stream) for stream in fingerprint_streams)
    fingerprint_bytes = sum(
        len(fingerprint) for stream in fingerprint_streams for fingerprint in stream
    )
    return ThroughputSample(
        label=f"similarity-index-{num_locks}-locks",
        num_streams=len(fingerprint_streams),
        bytes_processed=fingerprint_bytes,
        items_processed=total_lookups,
        elapsed_seconds=elapsed,
    )


class ParallelDedupePipeline:
    """Back up several data streams against one node concurrently.

    Each stream gets its own thread (and therefore its own open container via
    parallel container management).  Used by integration tests to exercise the
    node's locking under concurrency and by the deduplication-efficiency
    benchmarks.
    """

    def __init__(self, node: DedupeNode, fingerprint_algorithm: str = "sha1"):
        self.node = node
        self.fingerprint_algorithm = fingerprint_algorithm

    def backup_streams(
        self,
        streams: Sequence[Sequence[SuperChunk]],
    ) -> ThroughputSample:
        """Back up pre-partitioned super-chunk streams in parallel."""
        bytes_processed = [0] * len(streams)
        chunks_processed = [0] * len(streams)

        def worker(stream_id: int) -> None:
            for superchunk in streams[stream_id]:
                result = self.node.backup_superchunk(superchunk)
                bytes_processed[stream_id] += superchunk.logical_size
                chunks_processed[stream_id] += result.total_chunks

        elapsed = _run_in_threads(worker, len(streams))
        return ThroughputSample(
            label="parallel-dedupe",
            num_streams=len(streams),
            bytes_processed=sum(bytes_processed),
            items_processed=sum(chunks_processed),
            elapsed_seconds=elapsed,
        )

    def backup_data_streams(
        self,
        data_streams: "Sequence[bytes | Iterable[bytes]]",
        chunker: Chunker,
        superchunk_size: int = 1024 * 1024,
        handprint_size: int = 8,
        executor: str = "thread",
    ) -> ThroughputSample:
        """Chunk, fingerprint and back up raw data streams in parallel.

        Each stream may be one byte buffer or an iterable of byte blocks.
        One engine lane per stream chunks, fingerprints and assembles
        super-chunks concurrently, feeding them through the engine's bounded
        queue straight into the node's batched data plane -- nothing beyond
        O(streams x super-chunk) is ever buffered (the seed harness collected
        every stream's super-chunks, payloads included, before starting the
        timed phase).  The measurement therefore now times the whole
        pipeline, front end included; the sample keeps the historical
        ``parallel-dedupe`` label and field shape.  ``executor="process"``
        runs the front end in shared-memory lane processes instead of
        threads (see :class:`~repro.parallel.engine.ParallelIngestEngine`).
        """
        data_streams = list(data_streams)
        config = PartitionerConfig(
            chunker=chunker,
            superchunk_size=superchunk_size,
            handprint_size=handprint_size,
            fingerprint_algorithm=self.fingerprint_algorithm,
        )
        engine = ParallelIngestEngine(
            workers=max(1, len(data_streams)), executor=executor
        )
        bytes_processed = 0
        chunks_processed = 0
        start = time.perf_counter()
        for superchunk in engine.iter_stream_superchunks(data_streams, config):
            result = self.node.backup_superchunk(superchunk)
            bytes_processed += superchunk.logical_size
            chunks_processed += result.total_chunks
        elapsed = time.perf_counter() - start
        return ThroughputSample(
            label="parallel-dedupe",
            num_streams=len(data_streams),
            bytes_processed=bytes_processed,
            items_processed=chunks_processed,
            elapsed_seconds=elapsed,
        )
