#!/usr/bin/env python3
"""Incremental backups of a versioned source tree (the paper's Linux scenario).

Backs up several versions of a synthetic source tree (the stand-in for the
Linux kernel dataset) into a Sigma-Dedupe cluster, one backup session per
version, and shows how source inline deduplication shrinks network transfer
and storage as versions accumulate -- the core value proposition of the paper's
Big Data protection use case.

Run with::

    python examples/incremental_backups.py
"""

from __future__ import annotations

from repro import SigmaDedupe
from repro.chunking.fixed import StaticChunker
from repro.metrics.report import format_table
from repro.utils.units import format_bytes
from repro.workloads.versioned_source import VersionedSourceWorkload


def main() -> None:
    workload = VersionedSourceWorkload(
        num_versions=6,
        files_per_version=80,
        mean_file_size=8 * 1024,
        change_fraction=0.15,
        churn_fraction=0.03,
    )
    framework = SigmaDedupe(
        num_nodes=4,
        routing="sigma",
        chunker=StaticChunker(1024),
        superchunk_size=64 * 1024,
        handprint_size=8,
    )

    rows = []
    cumulative_logical = 0
    for snapshot in workload.snapshots():
        files = [(file.path, file.data) for file in snapshot.files]
        report = framework.backup(files, session_label=snapshot.label)
        cumulative_logical += report.logical_bytes
        rows.append(
            [
                snapshot.label,
                report.files,
                format_bytes(report.logical_bytes),
                format_bytes(report.transferred_bytes),
                f"{1 - report.transferred_bytes / report.logical_bytes:.0%}",
                f"{report.cluster_deduplication_ratio:.2f}x",
            ]
        )

    print(
        format_table(
            ["version", "files", "logical", "transferred", "bandwidth saved", "cluster DR"],
            rows,
            title="Incremental backups of a versioned source tree",
        )
    )

    physical = framework.cluster.physical_bytes
    print(f"\ncumulative logical data : {format_bytes(cumulative_logical)}")
    print(f"physical data stored    : {format_bytes(physical)}")
    print(f"overall dedup ratio     : {cumulative_logical / physical:.2f}x")
    print("\nper-node storage usage:")
    for node_id, usage in enumerate(framework.node_storage_usages()):
        print(f"  node {node_id}: {format_bytes(usage)}")

    # Restore spot check: the newest version of every file must reassemble.
    last_session = framework.director.sessions()[-1]
    restored = dict(framework.restore_session(last_session.session_id))
    latest = {file.path: file.data for file in list(workload.snapshots())[-1].files}
    mismatches = [path for path, data in latest.items() if restored.get(path) != data]
    print(f"\nrestore verification: {len(latest) - len(mismatches)}/{len(latest)} files OK")
    if mismatches:
        raise SystemExit(f"restore mismatch for {mismatches[:3]}")


if __name__ == "__main__":
    main()
