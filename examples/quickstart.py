#!/usr/bin/env python3
"""Quickstart: back up files to a Sigma-Dedupe cluster and restore them.

Creates a 4-node deduplication cluster with the paper's default configuration
(4 KB static chunks, 1 MB super-chunks, handprint size 8, similarity-based
stateful routing), backs up two generations of a small file set, prints the
deduplication statistics, and verifies that every file restores bit-for-bit.

Both the chunking scheme and the routing scheme are selectable by registered
name, e.g.::

    python examples/quickstart.py                            # paper defaults
    python examples/quickstart.py --chunker gear             # FastCDC-style
    python examples/quickstart.py --chunker cdc --routing stateless

Container storage is pluggable: pass ``--storage-dir DIR`` to spill sealed
containers' data sections to files under ``DIR`` (one ``node-<id>``
subdirectory per node) instead of keeping them in RAM -- restores then reload
the spill files transparently.

Ingest can run in parallel: pass ``--workers N`` to fan the chunking and
fingerprinting front end across N worker lanes (results are identical to
serial ingest; on multi-core hosts the backup simply finishes faster).
"""

from __future__ import annotations

import argparse
import random

from repro import SigmaDedupe
from repro.chunking import ALL_CHUNKERS, build_chunker
from repro.routing import ALL_SCHEMES
from repro.utils.units import format_bytes


def make_files(num_files: int = 6, file_size: int = 256 * 1024, seed: int = 7):
    """Generate a small set of deterministic pseudo-random files."""
    rng = random.Random(seed)
    return [(f"docs/report-{i:02d}.dat", rng.randbytes(file_size)) for i in range(num_files)]


def edit_files(files, seed: int = 8):
    """Simulate the next day's state: small in-place edits to every file."""
    rng = random.Random(seed)
    edited = []
    for path, data in files:
        buffer = bytearray(data)
        for _ in range(4):
            offset = rng.randrange(0, len(buffer) - 512)
            buffer[offset:offset + 512] = rng.randbytes(512)
        edited.append((path, bytes(buffer)))
    return edited


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--chunker",
        choices=sorted(ALL_CHUNKERS),
        default="static",
        help="chunking scheme (default: static, the paper's choice)",
    )
    parser.add_argument(
        "--routing",
        choices=sorted(ALL_SCHEMES),
        default="sigma",
        help="data routing scheme (default: sigma)",
    )
    parser.add_argument(
        "--storage-dir",
        default=None,
        metavar="DIR",
        help="spill sealed containers to files under DIR (default: in-memory "
        "containers, the paper's RAM-file-system setup)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parallel ingest lanes for chunking+fingerprinting (default: "
        "serial; results are identical either way)",
    )
    args = parser.parse_args()

    chunker = build_chunker(args.chunker)
    framework = SigmaDedupe(
        num_nodes=4, routing=args.routing, chunker=chunker,
        storage_dir=args.storage_dir, workers=args.workers,
    )
    print(f"chunking scheme      : {args.chunker} "
          f"(~{format_bytes(chunker.average_chunk_size)} chunks)")
    print(f"routing scheme       : {args.routing}")
    print(f"container storage    : "
          f"{'spill-to-disk at ' + args.storage_dir if args.storage_dir else 'in-memory'}")
    print(f"ingest lanes         : {args.workers or 'serial'}")

    print("\n=== Day 1: initial full backup ===")
    day1_files = make_files()
    report1 = framework.backup(day1_files, session_label="day-1")
    print(f"files backed up      : {report1.files}")
    print(f"logical data         : {format_bytes(report1.logical_bytes)}")
    print(f"transferred over net : {format_bytes(report1.transferred_bytes)}")
    print(f"cluster dedup ratio  : {report1.cluster_deduplication_ratio:.2f}x")

    print("\n=== Day 2: incremental full backup (small edits) ===")
    day2_files = edit_files(day1_files)
    report2 = framework.backup(day2_files, session_label="day-2")
    saved = report2.logical_bytes - report2.transferred_bytes
    print(f"logical data         : {format_bytes(report2.logical_bytes)}")
    print(f"transferred over net : {format_bytes(report2.transferred_bytes)}")
    print(f"bandwidth saved      : {format_bytes(saved)} "
          f"({saved / report2.logical_bytes:.0%})")
    print(f"cluster dedup ratio  : {report2.cluster_deduplication_ratio:.2f}x")

    print("\n=== Per-node storage usage (load balance) ===")
    for node_id, usage in enumerate(framework.node_storage_usages()):
        print(f"node {node_id}: {format_bytes(usage)}")

    print("\n=== Restore verification ===")
    restored = dict(framework.restore_session(report2.session_id))
    ok = all(restored[path] == data for path, data in day2_files)
    print("all day-2 files restored bit-for-bit:", "OK" if ok else "FAILED")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
