#!/usr/bin/env python3
"""Protect a small VM fleet with cluster deduplication (the paper's VM scenario).

Backs up consecutive monthly full backups of a synthetic VM fleet -- few very
large image files with skewed sizes and block-level changes -- into a
Sigma-Dedupe cluster, then restores one VM image and verifies it.  This is the
workload on which file-granularity routing (Extreme Binning) breaks down in
the paper (Figure 8, VM panel), so the example also reports what Extreme
Binning-style file routing would have done to storage balance.

Run with::

    python examples/vm_fleet_protection.py
"""

from __future__ import annotations

from repro import SigmaDedupe
from repro.chunking.fixed import StaticChunker
from repro.metrics.report import format_table
from repro.metrics.skew import storage_skew
from repro.simulation.comparison import run_scheme
from repro.utils.units import format_bytes
from repro.workloads.trace import materialize_workload
from repro.workloads.vm_images import VMBackupWorkload


def main() -> None:
    workload = VMBackupWorkload(
        num_backups=3, num_vms=5, base_image_size=384 * 1024, change_fraction=0.10
    )

    framework = SigmaDedupe(
        num_nodes=4,
        routing="sigma",
        chunker=StaticChunker(4096),
        superchunk_size=256 * 1024,
        handprint_size=8,
    )

    rows = []
    last_session_id = None
    last_files = None
    for snapshot in workload.snapshots():
        files = [(file.path, file.data) for file in snapshot.files]
        report = framework.backup(files, session_label=snapshot.label)
        last_session_id, last_files = report.session_id, dict(files)
        rows.append(
            [
                snapshot.label,
                format_bytes(report.logical_bytes),
                format_bytes(report.transferred_bytes),
                f"{report.cluster_deduplication_ratio:.2f}x",
            ]
        )
    print(format_table(["backup", "logical", "transferred", "cluster DR"], rows,
                       title="Monthly VM fleet backups"))

    skew = storage_skew(framework.node_storage_usages())
    print(f"\nstorage balance (Sigma-Dedupe): CV={skew.coefficient_of_variation:.2f}, "
          f"max/mean={skew.max_over_mean:.2f}")

    # Restore the largest VM image from the latest backup and verify it.
    largest_path = max(last_files, key=lambda path: len(last_files[path]))
    restored = framework.restore(last_session_id, largest_path)
    print(f"restore check on {largest_path}: "
          f"{'OK' if restored == last_files[largest_path] else 'FAILED'}")

    # Contrast with file-granularity routing on the same workload (simulation).
    snapshots = materialize_workload(workload, chunker=StaticChunker(4096))
    sigma = run_scheme(snapshots, "sigma", 4, superchunk_size=256 * 1024)
    binning = run_scheme(snapshots, "extreme_binning", 4, superchunk_size=256 * 1024)
    print("\nWhy super-chunk routing matters for VM images:")
    print(f"  Sigma-Dedupe      EDR={sigma.normalized_effective_deduplication_ratio:.3f} "
          f"storage CV={sigma.skew.coefficient_of_variation:.2f}")
    print(f"  Extreme Binning   EDR={binning.normalized_effective_deduplication_ratio:.3f} "
          f"storage CV={binning.skew.coefficient_of_variation:.2f}")
    print("  (file-granularity routing sends whole multi-hundred-MB images to single\n"
          "   nodes, so the largest VMs dominate a few nodes and balance collapses)")


if __name__ == "__main__":
    main()
