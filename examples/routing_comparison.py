#!/usr/bin/env python3
"""Compare cluster data-routing schemes with the trace-driven simulator.

Runs the four routing schemes of the paper (Sigma-Dedupe, EMC stateful, EMC
stateless, Extreme Binning) over a synthetic Linux-like workload at several
cluster sizes and prints the normalized effective deduplication ratio (EDR),
storage balance and fingerprint-lookup message overhead -- a miniature of
Figures 7 and 8.

Run with::

    python examples/routing_comparison.py
"""

from __future__ import annotations

from repro.chunking.fixed import StaticChunker
from repro.metrics.report import format_table
from repro.simulation.comparison import compare_schemes, results_by_scheme
from repro.workloads.trace import materialize_workload, trace_statistics
from repro.workloads.versioned_source import VersionedSourceWorkload


def main() -> None:
    workload = VersionedSourceWorkload(
        num_versions=8, files_per_version=150, mean_file_size=8 * 1024
    )
    print("materialising workload (chunking + fingerprinting)...")
    snapshots = materialize_workload(workload, chunker=StaticChunker(1024))
    stats = trace_statistics(snapshots)
    print(
        f"workload: {stats['total_chunks']:,} chunks, "
        f"single-node dedup ratio {stats['deduplication_ratio']:.2f}x\n"
    )

    cluster_sizes = (4, 8, 16, 32)
    results = compare_schemes(
        snapshots,
        schemes=("sigma", "stateful", "stateless", "extreme_binning"),
        cluster_sizes=cluster_sizes,
        superchunk_size=64 * 1024,
        handprint_size=8,
    )

    rows = []
    for scheme, scheme_results in sorted(results_by_scheme(results).items()):
        for result in scheme_results:
            rows.append(
                [
                    scheme,
                    result.num_nodes,
                    round(result.normalized_effective_deduplication_ratio, 3),
                    round(result.cluster_deduplication_ratio, 2),
                    round(result.skew.coefficient_of_variation, 2),
                    result.fingerprint_lookup_messages,
                ]
            )

    print(
        format_table(
            ["scheme", "nodes", "normalized EDR", "cluster DR", "storage CV", "lookup msgs"],
            rows,
            title="Routing scheme comparison (Linux-like workload)",
        )
    )

    print(
        "\nExpected shape (paper Fig. 7/8): stateful achieves the highest EDR but its\n"
        "message count grows with the cluster size; Sigma-Dedupe stays close to\n"
        "stateful in EDR at near-stateless message overhead; stateless and Extreme\n"
        "Binning are cheap but lose deduplication and/or balance as the cluster grows."
    )


if __name__ == "__main__":
    main()
